"""Versioned, picklable snapshots of the sliding-window algorithms.

The paper's summaries are small by construction — a window stores a number
of points independent of the window size ``n`` — which is exactly what makes
serving-side lifecycle operations cheap: checkpointing a shard means pickling
a few coreset-sized structures per stream, and an idle stream can be evicted
to a snapshot a few kilobytes large and revived transparently later.

This module defines the snapshot *format*.  A snapshot captures the
**logical** state of a window — the per-guess families of stream items, the
representative bookkeeping, the aspect-ratio estimator's witnesses — never
the vectorised runtime (engine slots, query-side arenas, kernel handles).
On :meth:`~repro.core.fair_sliding_window.FairSlidingWindow.restore` those
runtime structures are rebuilt from the logical state, so a snapshot taken
on the vectorised backend restores cleanly onto the scalar backend and vice
versa, and a ``float64`` snapshot restores onto a ``float32`` engine.

Format stability
----------------
Snapshots carry :data:`SNAPSHOT_VERSION`.  The version is bumped whenever a
field is added, removed or reinterpreted; :func:`validate_snapshot` rejects
snapshots from a different version with :class:`SnapshotVersionError` rather
than silently misreading them.  Pickle is the wire format (the structures
are plain dataclasses over :class:`~repro.core.geometry.StreamItem`, ints
and floats); forward compatibility across package versions is promised only
for equal ``SNAPSHOT_VERSION``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .geometry import Color, StreamItem

#: Bump whenever the snapshot layout changes; restore refuses other versions.
#: Version history: 1 = initial format; 2 = added :attr:`WindowSnapshot.policy`
#: (window-policy state: watermarks, reorder buffer, late counters).
SNAPSHOT_VERSION = 2

#: Variant tags stored in :attr:`WindowSnapshot.variant` (the same names the
#: serving :class:`~repro.serving.factory.WindowFactory` uses).
SNAPSHOT_VARIANTS = ("ours", "oblivious", "dimension_free")


class SnapshotVersionError(ValueError):
    """The snapshot was written by an incompatible format version."""


class SnapshotMismatchError(ValueError):
    """The snapshot does not fit the window it is being restored into."""


@dataclass
class GuessStateSnapshot:
    """Logical state of one :class:`~repro.core.coreset.GuessState`.

    Every family is stored as a list of stream items in arrival order (the
    dicts of the live state are insertion-ordered by arrival time, an
    invariant the expiration logic relies on, so order is part of the
    format).  The bookkeeping maps are stored as plain dicts.
    """

    guess: float
    v_attractors: list[StreamItem] = field(default_factory=list)
    v_representatives: list[StreamItem] = field(default_factory=list)
    v_rep_of: dict[int, int] = field(default_factory=dict)
    c_attractors: list[StreamItem] = field(default_factory=list)
    c_representatives: list[StreamItem] = field(default_factory=list)
    c_reps_of: dict[int, dict[Color, list[int]]] = field(default_factory=dict)
    c_owner_of: dict[int, int] = field(default_factory=dict)
    #: lower bound on the arrival time of every stored point (``inf`` = none).
    oldest: float = float("inf")
    #: highest expunge bound already applied by ``_drop_older_than``.
    dropped_below: int = 0


@dataclass
class IndependentSetSnapshot:
    """Logical state of one dimension-free per-guess state."""

    guess: float
    attractors: list[StreamItem] = field(default_factory=list)
    representatives: list[StreamItem] = field(default_factory=list)
    reps_of: dict[int, dict[Color, list[int]]] = field(default_factory=dict)


@dataclass
class EstimatorSnapshot:
    """Logical state of the oblivious variant's aspect-ratio estimator."""

    #: per binary scale: ``(exponent, older, newer, certified distance)``.
    pairs: list[tuple[int, StreamItem, StreamItem, float]] = field(
        default_factory=list
    )
    #: per binary scale: last time a gap of that scale was witnessed.
    gap_buckets: dict[int, int] = field(default_factory=dict)
    last: StreamItem | None = None
    now: int = 0


@dataclass
class WindowSnapshot:
    """A complete, self-contained checkpoint of one sliding-window instance.

    ``states`` holds one :class:`GuessStateSnapshot` (``ours`` /
    ``oblivious``) or :class:`IndependentSetSnapshot` (``dimension_free``)
    per maintained guess, in increasing guess order.  For the oblivious
    variant ``exponents`` aligns with ``states`` and ``grid_lo``/``grid_hi``
    and ``estimator`` carry the adaptive-range machinery.
    """

    version: int
    variant: str
    now: int
    window_size: int
    states: list
    #: oblivious only: grid exponent of each entry of ``states``.
    exponents: list[int] | None = None
    grid_lo: int | None = None
    grid_hi: int | None = None
    estimator: EstimatorSnapshot | None = None
    #: accuracy knobs the states were built under; restore cross-checks
    #: them against the target window's config (``None`` = not recorded /
    #: not applicable, e.g. ``delta`` for the dimension-free variant).
    beta: float | None = None
    delta: float | None = None
    #: window-policy state (``repro.core.window_policy``): the ``kind``, its
    #: parameters, and its runtime state (watermark, reorder buffer, seq↔ts
    #: ledger, late counters).  ``None`` is read as the count policy.
    policy: dict | None = None


def _mismatch(name: str, recorded: float, expected: float) -> bool:
    return abs(recorded - expected) > 1e-12 * max(1.0, abs(expected))


def validate_snapshot(
    snapshot: WindowSnapshot,
    variant: str,
    window_size: int,
    *,
    beta: float | None = None,
    delta: float | None = None,
) -> None:
    """Reject snapshots the target window cannot load faithfully.

    ``beta`` / ``delta`` are the target configuration's accuracy knobs;
    when both a knob and its recorded snapshot value are present they must
    agree — restoring states built under different thresholds would
    silently misinterpret them.
    """
    if not isinstance(snapshot, WindowSnapshot):
        raise SnapshotMismatchError(
            f"expected a WindowSnapshot, got {type(snapshot).__name__}"
        )
    if snapshot.version != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {snapshot.version} is not supported "
            f"by this build (expected {SNAPSHOT_VERSION})"
        )
    if snapshot.variant != variant:
        raise SnapshotMismatchError(
            f"snapshot of variant {snapshot.variant!r} cannot restore a "
            f"{variant!r} window"
        )
    if snapshot.window_size != window_size:
        raise SnapshotMismatchError(
            f"snapshot was taken with window_size={snapshot.window_size}, "
            f"the target window uses {window_size}"
        )
    for name, recorded, expected in (
        ("beta", snapshot.beta, beta),
        ("delta", snapshot.delta, delta),
    ):
        if recorded is not None and expected is not None:
            if _mismatch(name, recorded, expected):
                raise SnapshotMismatchError(
                    f"snapshot was taken with {name}={recorded}, the target "
                    f"window uses {name}={expected}"
                )


def check_grid_alignment(snapshot_states: list, guesses: list[float]) -> None:
    """Verify a snapshot's per-guess states line up with a static grid.

    Shared by the ``ours`` and ``dimension_free`` restores: the snapshot
    must hold exactly one state per grid guess, in the same order, with
    matching guess values.
    """
    if len(snapshot_states) != len(guesses):
        raise SnapshotMismatchError(
            f"snapshot holds {len(snapshot_states)} guesses, this window's "
            f"grid has {len(guesses)}"
        )
    for guess, state_snapshot in zip(guesses, snapshot_states):
        if _mismatch("guess", state_snapshot.guess, guess):
            raise SnapshotMismatchError(
                f"snapshot guess {state_snapshot.guess} does not match "
                f"grid guess {guess}"
            )
