"""Aspect-ratio-oblivious variant of the sliding-window algorithm.

``Ours`` (:class:`~repro.core.fair_sliding_window.FairSlidingWindow`) assumes
that the minimum and maximum pairwise distances of the stream are known in
advance, so that the guess grid Γ can be built once.  In practice the aspect
ratio is rarely known; the paper's ``OursOblivious`` removes the assumption by
maintaining running estimates of ``d_min`` and ``d_max`` *for the current
window* (using the sliding-window diameter-estimation techniques of [8]) and
by keeping per-guess state only for the guesses inside the estimated range.

Besides removing an unrealistic assumption, the adaptive range makes the
algorithm cheaper: guesses far outside the window's distance scale are never
materialised, which is why the paper observes ``OursOblivious`` to use
slightly less memory and time than ``Ours``.

Implementation notes
--------------------
* Guesses are identified by their integer exponent in the geometric grid
  (``γ = (1 + β) ** exponent``), so that the active window of exponents can
  slide without floating-point mismatches.
* When the estimated range moves, exponents that fall outside it are retired
  (their state is dropped) and new exponents are created lazily.  A freshly
  created guess has not observed the older points of the current window; this
  is the same transient behaviour as in [8] and is harmless because a guess
  only becomes relevant once the window's distance scale has genuinely moved
  into its range.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..sequential.base import FairCenterSolver
from ..sequential.jones import JonesFairCenter
from ..streaming.diameter import AspectRatioEstimator
from .config import SlidingWindowConfig
from .backend import cover_fits, make_batch_engine
from .coreset import GuessState, distinct_memory, total_memory
from .fastpath import make_updater
from .geometry import Point, StreamItem
from .guesses import AdaptiveGuessGrid, guess_value
from .ingest import BatchIngestMixin
from .snapshot import (
    SNAPSHOT_VERSION,
    EstimatorSnapshot,
    WindowSnapshot,
    validate_snapshot,
)
from .solution import ClusteringSolution
from .window_policy import PolicyDrivenWindow, WindowPolicy, make_policy


class ObliviousFairSlidingWindow(PolicyDrivenWindow, BatchIngestMixin):
    """Sliding-window fair center without prior knowledge of ``dmin``/``dmax``."""

    def __init__(
        self,
        config: SlidingWindowConfig,
        solver: FairCenterSolver | None = None,
        *,
        estimator: AspectRatioEstimator | None = None,
        backend: str = "auto",
        policy: WindowPolicy | str | None = None,
    ) -> None:
        self.config = config
        self.solver = solver if solver is not None else JonesFairCenter()
        self.estimator = estimator if estimator is not None else AspectRatioEstimator(
            config.window_size, config.metric, backend=backend, dtype=config.dtype
        )
        self._grid = AdaptiveGuessGrid(beta=config.beta)
        self._states: dict[int, GuessState] = {}
        self._engine = make_batch_engine(config.metric, backend, config.dtype)
        # The policy must exist before the updater resolves its path (the
        # native ladder is count-only and degrades to fused otherwise).
        self._policy = make_policy(policy)
        self._updater = make_updater(self, "full", backend)
        self._now = 0

    # ------------------------------------------------------------- properties

    @property
    def now(self) -> int:
        """Arrival time of the most recent processed point (0 initially)."""
        return self._now

    @property
    def window_size(self) -> int:
        """Target window size ``n``."""
        return self.config.window_size

    @property
    def guesses(self) -> list[float]:
        """Currently active guess values, in increasing order."""
        return [guess_value(e, self.config.beta) for e in sorted(self._states)]

    @property
    def states(self) -> Sequence[GuessState]:
        """Per-guess states in increasing guess order (read-only view)."""
        return tuple(self._states[e] for e in sorted(self._states))

    # ----------------------------------------------------------------- update

    def _ingest_one(self, item: StreamItem) -> None:
        """Process a new arrival: refresh the estimates, then run Update."""
        self.estimator.insert(item, horizon=self.expiry_horizon(item.t))
        if self._refresh_active_guesses():
            # Guess churn: the update path may hold per-guess structures
            # (the native ladder's mirrors) that must follow the range move.
            self._updater.sync()
        # Per-arrival core: see repro.core.fastpath (fused scan + ladder loop).
        self._updater.insert(item)

    def extend(self, items: Iterable[StreamItem | Point]) -> None:
        """Insert every element of ``items`` in order."""
        for item in items:
            self.insert(item)

    def _stamp(self, item: StreamItem | Point) -> StreamItem:
        if isinstance(item, Point):
            item = StreamItem(item, self._now + 1)
        if item.t <= self._now:
            raise ValueError(
                f"arrival times must be strictly increasing: got {item.t} "
                f"after {self._now}"
            )
        self._now = item.t
        return item

    def _refresh_active_guesses(self) -> bool:
        """Slide the active guess range; True when any state changed."""
        dmin = self.estimator.dmin_estimate()
        dmax = self.estimator.dmax_estimate()
        if dmin is None or dmax is None:
            return False
        self._grid.update_bounds(dmin, dmax)
        active = set(self._grid.exponents())
        changed = False
        # Retire the guesses that left the estimated range...
        for exponent in [e for e in self._states if e not in active]:
            self._states.pop(exponent).release_all()
            changed = True
        # ... and create the ones that entered it.
        for exponent in active:
            if exponent not in self._states:
                self._states[exponent] = GuessState(
                    guess=guess_value(exponent, self.config.beta),
                    delta=self.config.delta,
                    constraint=self.config.constraint,
                    metric=self.config.metric,
                    engine=self._engine,
                )
                changed = True
        return changed

    # ----------------------------------------------------------------- query

    def query(self) -> ClusteringSolution:
        """Extract a fair-center solution for the current window."""
        if self._now == 0 or not self._states:
            return ClusteringSolution(
                centers=[], radius=0.0,
                metadata={"algorithm": "ours_oblivious", "empty": True},
            )
        k = self.config.k
        ordered = [self._states[e] for e in sorted(self._states)]
        for state in ordered:
            if not state.is_valid:
                continue
            if not self._validation_cover_fits(state, k):
                continue
            return self._solve_on_coreset(state)
        return self._fallback_solution(ordered)

    def _validation_cover_fits(self, state: GuessState, k: int) -> bool:
        return cover_fits(
            state.validation_view(), 2.0 * state.guess, k, self.config.metric
        )

    def _solve_on_coreset(self, state: GuessState) -> ClusteringSolution:
        coreset = state.coreset_view()
        solution = self.solver.solve(
            coreset, self.config.constraint, self.config.metric
        )
        solution.guess = state.guess
        solution.coreset_size = len(coreset)
        solution.metadata.setdefault("algorithm", "ours_oblivious")
        solution.metadata["valid_guess"] = state.guess
        solution.metadata["dmin_estimate"] = self.estimator.dmin_estimate()
        solution.metadata["dmax_estimate"] = self.estimator.dmax_estimate()
        self._policy.annotate(
            solution, list(state.c_representatives.values()), self.config.metric
        )
        return solution

    def _fallback_solution(self, ordered: list[GuessState]) -> ClusteringSolution:
        for state in reversed(ordered):
            coreset = state.coreset_view()
            if coreset:
                solution = self.solver.solve(
                    coreset, self.config.constraint, self.config.metric
                )
                solution.guess = state.guess
                solution.coreset_size = len(coreset)
                solution.metadata["algorithm"] = "ours_oblivious"
                solution.metadata["fallback"] = True
                return solution
        return ClusteringSolution(
            centers=[], radius=float("inf"),
            metadata={"algorithm": "ours_oblivious", "fallback": True},
        )

    # --------------------------------------------------------------- snapshot

    def snapshot(self) -> WindowSnapshot:
        """A versioned, picklable checkpoint of the window's logical state.

        Captures the active guess states (keyed by grid exponent), the
        adaptive grid's bounds and the aspect-ratio estimator's witnesses,
        so a restored window re-derives exactly the same active range on
        its next arrival.
        """
        exponents = sorted(self._states)
        return WindowSnapshot(
            version=SNAPSHOT_VERSION,
            variant="oblivious",
            now=self._now,
            window_size=self.window_size,
            states=[self._states[e].snapshot_state() for e in exponents],
            exponents=exponents,
            grid_lo=self._grid.lo,
            grid_hi=self._grid.hi,
            estimator=self.estimator.snapshot_state(),
            beta=self.config.beta,
            delta=self.config.delta,
            policy=self._policy.snapshot_state(),
        )

    def restore(self, snapshot: WindowSnapshot) -> None:
        """Replace this window's state with a snapshot's.

        Anything currently stored is dropped; the active guess states, the
        adaptive grid bounds and the estimator sketch are rebuilt from the
        snapshot, after which the window behaves exactly as the snapshotted
        one did at snapshot time.
        """
        validate_snapshot(
            snapshot,
            "oblivious",
            self.window_size,
            beta=self.config.beta,
            delta=self.config.delta,
        )
        # Policy state loads before any structural mutation so a
        # kind/parameter mismatch leaves the window untouched.
        self._policy.load_state(snapshot.policy)
        for state in self._states.values():
            state.release_all()
        self._states = {}
        self._grid.set_bounds(snapshot.grid_lo, snapshot.grid_hi)
        estimator_snapshot = (
            snapshot.estimator
            if snapshot.estimator is not None
            else EstimatorSnapshot()
        )
        self.estimator.load_state(estimator_snapshot)
        for exponent, state_snapshot in zip(
            snapshot.exponents or (), snapshot.states
        ):
            state = GuessState(
                guess=guess_value(exponent, self.config.beta),
                delta=self.config.delta,
                constraint=self.config.constraint,
                metric=self.config.metric,
                engine=self._engine,
            )
            state.load_state(state_snapshot)
            self._states[exponent] = state
        self._now = snapshot.now
        self._updater.reset()

    # ------------------------------------------------------------ diagnostics

    @property
    def update_path(self) -> str:
        """The resolved update path (``scalar``/``vector``/``fused``/``native``)."""
        return self._updater.path

    def update_stats(self) -> dict[str, float]:
        """Update-path counters (policy counters added for non-count policies)."""
        stats = self._updater.stats_snapshot().as_dict()
        if self._policy.kind != "count":
            stats.update(self._policy.counters())
        return stats

    def memory_points(self) -> int:
        """Distinct points maintained in memory, estimator sketch included."""
        return distinct_memory(self._states.values()) + self.estimator.memory_points()

    def total_entries(self) -> int:
        """Total number of stored references across every active guess."""
        return total_memory(self._states.values()) + self.estimator.memory_points()

    def valid_guesses(self) -> list[float]:
        """Active guesses currently certified as valid."""
        return [
            guess_value(e, self.config.beta)
            for e in sorted(self._states)
            if self._states[e].is_valid
        ]

    def summary(self) -> dict:
        """Compact diagnostic snapshot."""
        return {
            "now": self._now,
            "window_size": self.window_size,
            "num_guesses": len(self._states),
            "memory_points": self.memory_points(),
            "dmin_estimate": self.estimator.dmin_estimate(),
            "dmax_estimate": self.estimator.dmax_estimate(),
        }
