"""Structural interfaces shared across the core/serving boundary.

The serving layer is deliberately variant-agnostic: a shard drives *any*
sliding-window algorithm through the small surface captured here, and the
window implementations (``FairSlidingWindow``, ``ObliviousSlidingWindow``,
``DimensionFreeSlidingWindow``) satisfy it structurally — no inheritance,
no registration.  Typing the factories and stream tables against
:class:`ServedWindow` replaces the previous ``Callable[[str], object]``
erasure (and the ``type: ignore[attr-defined]`` scatter it forced at every
window call site) with checked signatures.

The sequential-solver counterpart, ``FairCenterSolver``, lives in
:mod:`repro.sequential.base` next to its implementations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:
    from .geometry import Point, StreamItem, TimestampedPoint
    from .snapshot import WindowSnapshot
    from .solution import ClusteringSolution


@runtime_checkable
class ServedWindow(Protocol):
    """One stream's sliding-window algorithm instance, as serving drives it.

    ``insert``/``insert_batch``/``query``/``memory_points`` are the
    steady-state surface; ``snapshot``/``restore`` power checkpointing and
    idle-stream eviction (a window that cannot snapshot may still be served
    with ``snapshot_evicted=False`` and no checkpointing — the protocol
    requires them because every shipped variant provides them).
    """

    def insert(
        self, item: "StreamItem | Point | TimestampedPoint"
    ) -> "StreamItem | None":
        """Apply one arrival; returns the stored (sequence-stamped) item.

        ``None`` means the window's policy buffered or dropped the arrival
        (event-time windows with a watermark; count windows always store).
        """
        ...

    def insert_batch(
        self, items: "Sequence[StreamItem | Point | TimestampedPoint]"
    ) -> "list[StreamItem]":
        """Apply a run of consecutive arrivals in order."""
        ...

    def query(self) -> "ClusteringSolution":
        """Solve fair center on the current window."""
        ...

    def memory_points(self) -> int:
        """Number of points currently stored by the window's sketches."""
        ...

    def snapshot(self) -> "WindowSnapshot":
        """The window's logical state as a picklable value object."""
        ...

    def restore(self, snapshot: "WindowSnapshot") -> None:
        """Replace the window's state with a snapshot's."""
        ...
