"""Matroid center baseline (Chen, Li, Liang, Wang — Algorithmica 2016).

The classical 3-approximation for center problems under a matroid constraint.
It is the ``ChenEtAl`` baseline of the paper's experiments: the most accurate
known sequential algorithm for fair center (which is matroid center on the
partition matroid) but also by far the slowest — the evaluation shows it to be
roughly two orders of magnitude slower than the matching-based Jones
algorithm, and the same gap is reproduced here.

Structure of the algorithm, for a guessed radius ``r``:

1. greedily select *heads* pairwise more than ``2 r`` apart (a maximal such
   set).  If more than ``rank(M)`` heads exist, the guess is too small.
2. build the disjoint balls ``B(h, r)`` around the heads and ask whether an
   independent set of the constraint matroid can pick one point from each
   ball.  The question is a *matroid intersection* between the constraint
   matroid and the partition matroid induced by the balls, answered by the
   generic oracle algorithm in :mod:`repro.matroid.intersection`.
3. if every ball can be hit, the selected points form a solution of radius at
   most ``3 r``.

The optimal radius is searched among a finite candidate set of distances via
binary search, exactly as in the original paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.backend import PointSet, as_point_set
from ..core.config import FairnessConstraint
from ..core.geometry import Point
from ..core.metrics import distances_to_set, euclidean, pairwise_distances
from ..core.solution import ClusteringSolution, evaluate_radius
from ..matroid.base import Matroid
from ..matroid.intersection import common_independent_set_of_size
from ..matroid.partition import PartitionMatroid
from .base import MetricFn, PointLike, strip_stream_items
from .gonzalez import gonzalez, greedy_independent_heads

# Above this many points the quadratic candidate-radius set becomes too
# expensive; a geometric grid refined around the head distances is used
# instead (see _candidate_radii).
_EXACT_CANDIDATE_LIMIT = 1500


@dataclass
class _BallIndexMatroid(Matroid):
    """Partition matroid ``at most one element per ball`` over point indices."""

    ball_of: dict[int, int]

    def is_independent(self, subset) -> bool:
        seen: set[int] = set()
        for element in subset:
            ball = self.ball_of.get(element)
            if ball is None or ball in seen:
                return False
            seen.add(ball)
        return True

    def can_extend(self, independent, element) -> bool:
        ball = self.ball_of.get(element)
        if ball is None:
            return False
        used = {self.ball_of[e] for e in independent}
        return ball not in used


@dataclass
class _ColorIndexMatroid(Matroid):
    """The fairness partition matroid expressed over point indices."""

    colors: list
    constraint: FairnessConstraint

    def is_independent(self, subset) -> bool:
        elements = list(subset)
        if len(set(elements)) != len(elements):
            return False
        counts: dict = {}
        for index in elements:
            color = self.colors[index]
            counts[color] = counts.get(color, 0) + 1
            if counts[color] > self.constraint.capacity(color):
                return False
        return True

    def can_extend(self, independent, element) -> bool:
        if element in set(independent):
            return False
        color = self.colors[element]
        used = sum(1 for e in independent if self.colors[e] == color)
        return used + 1 <= self.constraint.capacity(color)


@dataclass
class ChenMatroidCenter:
    """Solver object implementing the Chen et al. matroid-center algorithm."""

    approximation_factor: float = 3.0
    #: when the candidate-radius set has to fall back to a geometric grid
    #: (large inputs), consecutive candidates are within this factor.
    grid_ratio: float = 1.1

    def solve(
        self,
        points: Sequence[PointLike],
        constraint: FairnessConstraint,
        metric: MetricFn = euclidean,
    ) -> ClusteringSolution:
        ps = as_point_set(points, metric)
        plain = strip_stream_items(ps.items)
        if not plain:
            return ClusteringSolution(
                centers=[], radius=0.0, coreset_size=0, metadata={"algorithm": "chen"}
            )
        # The coordinate matrix survives stream-item stripping unchanged and
        # is shared by every feasibility probe of the binary search.
        plain_ps = ps.replace_items(plain)
        colors = [p.color for p in plain]
        k = constraint.k

        candidates = self._candidate_radii(plain_ps, k, metric)
        feasible_centers: list[Point] | None = None
        feasible_radius: float | None = None

        # Standard binary search for the smallest candidate radius whose
        # feasibility check succeeds (the check is guaranteed to succeed for
        # every candidate >= the optimal radius).
        lo, hi = 0, len(candidates) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            selection = self._feasible_selection(
                plain_ps, colors, constraint, candidates[mid], metric
            )
            if selection is not None:
                feasible_centers = selection
                feasible_radius = candidates[mid]
                hi = mid - 1
            else:
                lo = mid + 1

        if feasible_centers is None:
            # Should only happen in degenerate cases (e.g. every capacity used
            # by colors absent from the data); fall back to the largest guess.
            selection = self._feasible_selection(
                plain_ps, colors, constraint, candidates[-1], metric
            )
            feasible_centers = selection if selection is not None else []
            feasible_radius = candidates[-1]

        radius = evaluate_radius(feasible_centers, plain_ps, metric)
        return ClusteringSolution(
            centers=feasible_centers,
            radius=radius,
            coreset_size=len(plain),
            metadata={
                "algorithm": "chen",
                "guessed_radius": feasible_radius,
                "num_candidates": len(candidates),
            },
        )

    def _candidate_radii(
        self, points: PointSet, k: int, metric: MetricFn
    ) -> list[float]:
        """Sorted candidate values for the optimal radius."""
        n = len(points)
        if n <= _EXACT_CANDIDATE_LIMIT:
            matrix = pairwise_distances(points, metric)
            upper = matrix[np.triu_indices(n, k=1)]
            values = np.unique(upper)
        else:
            # Distances from the Gonzalez heads to every point bracket the
            # optimum; a geometric refinement keeps the grid small while
            # guaranteeing a candidate within ``grid_ratio`` of the optimum.
            # The sweep's precomputed head-distance matrix holds exactly the
            # values needed, so no per-head distance pass is re-run.
            heads = gonzalez(points, k + 1, metric)
            if heads.head_distances is not None:
                positive = heads.head_distances[heads.head_distances > 0]
                dists = positive.ravel().tolist()
            else:  # pragma: no cover - the sweep always records distances
                dists = []
                for head in heads.centers:
                    dists.extend(distances_to_set(head, points, metric).tolist())
                dists = [d for d in dists if d > 0]
            if not dists:
                return [0.0]
            low, high = min(dists), max(dists)
            values_list = [low]
            while values_list[-1] < high:
                values_list.append(values_list[-1] * self.grid_ratio)
            values = np.unique(np.asarray(values_list, dtype=float))
        values = values[values >= 0]
        if values.size == 0 or values[0] > 0:
            values = np.concatenate(([0.0], values))
        return values.tolist()

    def _feasible_selection(
        self,
        points: PointSet,
        colors: list,
        constraint: FairnessConstraint,
        radius: float,
        metric: MetricFn,
    ) -> list[Point] | None:
        """Steps 1-3 of the reduction for a fixed radius guess."""
        k = constraint.k
        head_indices = greedy_independent_heads(
            points, 2.0 * radius, metric, limit=k
        )
        if len(head_indices) > k:
            return None
        heads = [points[i] for i in head_indices]

        # Assign each point to the first head within distance ``radius``;
        # points farther than ``radius`` from every head do not belong to any
        # ball (they are still covered within 2r by maximality of the heads).
        # Membership uses a tiny relative tolerance: candidate radii are
        # computed with the vectorised distance kernel while this check may
        # disagree by 1 ulp at the exact optimal radius, which would
        # otherwise wrongly mark the guess infeasible.
        tolerance = radius * (1.0 + 1e-9) + 1e-12
        # One packed many_to_many call for every head at once (a cached
        # pairwise matrix — computed by the exact candidate enumeration —
        # turns this into a row read): the column-wise argmin matches the
        # per-point "first minimum" rule.
        if points.is_vectorized:
            head_distances = points.distances_between(head_indices)
        else:
            head_distances = np.stack(
                [
                    np.asarray(distances_to_set(h, points.items, metric), dtype=float)
                    for h in heads
                ]
            )
        balls = np.argmin(head_distances, axis=0)
        best = head_distances[balls, np.arange(len(points))]
        ball_of: dict[int, int] = {}
        for index in range(len(points)):
            if best[index] <= tolerance:
                ball_of[index] = int(balls[index])

        # Prune the ground set: inside each ball, at most ``k_c`` points of
        # each color ``c`` (the closest ones to the head) can ever be needed
        # by an intersection of size <= k, so the rest can be discarded.  This
        # keeps the oracle algorithm fast without affecting feasibility.
        pruned: list[int] = []
        per_ball_color: dict[tuple[int, object], list[tuple[float, int]]] = {}
        for index, ball in ball_of.items():
            color = colors[index]
            if constraint.capacity(color) == 0:
                continue
            key = (ball, color)
            dist = float(head_distances[ball, index])
            per_ball_color.setdefault(key, []).append((dist, index))
        for (ball, color), entries in per_ball_color.items():
            entries.sort(key=lambda pair: pair[0])
            keep = entries[: max(1, constraint.capacity(color))]
            pruned.extend(index for _, index in keep)

        ball_matroid = _BallIndexMatroid({i: ball_of[i] for i in pruned})
        color_matroid = _ColorIndexMatroid(colors, constraint)
        selection = common_independent_set_of_size(
            pruned, ball_matroid, color_matroid, size=len(heads)
        )
        if selection is None:
            return None
        return [points[i] for i in selection]


def chen_matroid_center(
    points: Sequence[PointLike],
    constraint: FairnessConstraint,
    metric: MetricFn = euclidean,
) -> ClusteringSolution:
    """Functional convenience wrapper around :class:`ChenMatroidCenter`."""
    return ChenMatroidCenter().solve(points, constraint, metric)


def chen_with_matroid(
    points: Sequence[PointLike],
    matroid: PartitionMatroid,
    metric: MetricFn = euclidean,
) -> ClusteringSolution:
    """Run the Chen et al. algorithm given an explicit partition matroid."""
    return ChenMatroidCenter().solve(points, matroid.constraint, metric)
