"""Gonzalez's greedy farthest-point algorithm for unconstrained k-center.

The classic 2-approximation (Gonzalez, 1985): repeatedly pick the point
farthest from the centers chosen so far.  It is used in three roles here:

* as the unconstrained baseline radius ``r*_k`` against which the fair radius
  is compared;
* to compute the *heads* that seed the Jones et al. fair solver;
* inside tests, as a sanity reference.

The implementation keeps a running array of distances to the closest chosen
center, so the total cost is ``O(n k)`` distance evaluations (vectorised for
the Euclidean metric).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.backend import as_point_set, greedy_cover_indices
from ..core.geometry import StreamItem
from ..core.metrics import distances_to_set, euclidean
from ..core.solution import ClusteringSolution
from .base import MetricFn, PointLike


@dataclass
class GonzalezResult:
    """Outcome of the greedy selection.

    Attributes
    ----------
    centers:
        The selected heads, in selection order.
    head_indices:
        Indices of the heads in the input sequence.
    assignment:
        For every input point, the index (into ``centers``) of its closest
        head.
    radius:
        Maximum distance of any point from its closest head (the greedy
        radius; at most twice the optimal unconstrained radius).
    head_distances:
        ``(num_heads, n)`` matrix of the distances from every selected head
        to every input point.  The traversal computes these rows anyway, so
        they are kept for downstream consumers (the Jones matching step, the
        Chen candidate grid) to reuse instead of re-deriving them.
    """

    centers: list[PointLike]
    head_indices: list[int]
    assignment: list[int]
    radius: float
    head_distances: np.ndarray | None = None


def gonzalez(
    points: Sequence[PointLike],
    k: int,
    metric: MetricFn = euclidean,
    *,
    first_index: int = 0,
) -> GonzalezResult:
    """Run Gonzalez's greedy farthest-point traversal.

    Parameters
    ----------
    points:
        Input point set (must be non-empty).  A
        :class:`~repro.core.backend.PointSet` is consumed zero-copy; plain
        sequences are stacked once when the metric has a kernel.
    k:
        Number of heads to select; if ``k >= len(points)`` every point becomes
        a head and the radius is zero.
    metric:
        Distance oracle.
    first_index:
        Index of the first head (the algorithm's guarantee holds for any
        choice; a fixed default keeps runs deterministic).
    """
    if not points:
        raise ValueError("gonzalez requires a non-empty point set")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    ps = as_point_set(points, metric)
    n = len(ps)
    k = min(k, n)
    if not 0 <= first_index < n:
        raise ValueError(f"first_index {first_index} out of range for {n} points")

    if ps.is_vectorized:
        # The coordinates are stacked (at most) once; every traversal round
        # is then a single kernel call instead of n scalar oracle calls.
        distances_from = ps.distances_from
    else:
        point_list = ps.items

        def distances_from(index: int) -> np.ndarray:
            return np.asarray(
                distances_to_set(point_list[index], point_list, metric), dtype=float
            )

    head_indices = [first_index]
    #: one row per selected head, kept for the result's ``head_distances``.
    head_rows = [distances_from(first_index)]
    # ``closest[i]`` is the distance of point i from its nearest chosen head;
    # ``assignment[i]`` is the index (into head_indices) of that head.
    closest = head_rows[0].copy()
    assignment = np.zeros(n, dtype=int)

    while len(head_indices) < k:
        next_index = int(closest.argmax())
        if closest[next_index] == 0.0:
            # All remaining points coincide with existing heads; adding more
            # heads cannot reduce the radius further.
            break
        head_indices.append(next_index)
        new_distances = distances_from(next_index)
        head_rows.append(new_distances)
        improved = new_distances < closest
        assignment[improved] = len(head_indices) - 1
        np.minimum(closest, new_distances, out=closest)

    centers = [ps.items[i] for i in head_indices]
    radius = float(closest.max()) if n else 0.0
    return GonzalezResult(
        centers=centers,
        head_indices=head_indices,
        assignment=assignment.tolist(),
        radius=radius,
        head_distances=np.stack(head_rows),
    )


@dataclass
class GonzalezKCenter:
    """Solver-style wrapper around :func:`gonzalez` (ignores fairness).

    Useful when an unconstrained reference solution is needed through the same
    interface as the fair solvers.  The reported ``approximation_factor`` is
    the classic 2 of Gonzalez's algorithm (w.r.t. unconstrained k-center).
    """

    approximation_factor: float = 2.0

    def solve(
        self,
        points: Sequence[PointLike],
        constraint,
        metric: MetricFn = euclidean,
    ) -> ClusteringSolution:
        result = gonzalez(points, constraint.k, metric)
        centers = [
            p.point if isinstance(p, StreamItem) else p for p in result.centers
        ]
        return ClusteringSolution(
            centers=centers,
            radius=result.radius,
            coreset_size=len(points),
            metadata={"algorithm": "gonzalez", "fair": False},
        )


def greedy_independent_heads(
    points: Sequence[PointLike],
    threshold: float,
    metric: MetricFn = euclidean,
    *,
    limit: int | None = None,
) -> list[int]:
    """Indices of a maximal prefix-greedy set of points pairwise > ``threshold`` apart.

    Scanning the points in order, a point is kept when its distance from every
    previously kept point exceeds ``threshold``.  This is the head-selection
    routine of the Chen et al. radius-guessing reduction and of the query-time
    validation step of the sliding-window algorithm.

    When ``limit`` is given the scan stops early as soon as ``limit + 1``
    heads are found (enough to certify infeasibility of the guess).

    This is a thin wrapper over the shared vectorised routine
    :func:`repro.core.backend.greedy_cover_indices` (min-distance vector,
    one kernel call per head); with a custom metric it degrades to the
    scalar pairwise scan.
    """
    return greedy_cover_indices(points, threshold, metric, limit=limit)
