"""Exact (exponential-time) solvers used as test oracles.

These brute-force routines enumerate candidate center sets explicitly and are
therefore only usable on tiny instances (a dozen points or so).  They exist so
that the test-suite can verify the approximation factors of the polynomial
algorithms and of the sliding-window algorithm against the true optimum.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from ..core.config import FairnessConstraint
from ..core.geometry import Point
from ..core.metrics import euclidean, pairwise_distances
from ..core.solution import ClusteringSolution
from .base import MetricFn, PointLike, strip_stream_items

# Enumerating all subsets of size <= k of n points costs C(n, k); refuse to do
# so past this bound so an accidental misuse cannot hang the test-suite.
_MAX_POINTS = 18


def _check_size(points: Sequence[PointLike]) -> None:
    if len(points) > _MAX_POINTS:
        raise ValueError(
            f"brute force solvers accept at most {_MAX_POINTS} points, "
            f"got {len(points)}"
        )


def _combo_radius(matrix: np.ndarray, combo: tuple[int, ...]) -> float:
    """Clustering radius of the centers ``combo`` read off the full distance
    matrix (one fancy-indexed min/max instead of an ``evaluate_radius`` scan
    per enumerated subset)."""
    return float(matrix[:, combo].min(axis=1).max())


def exact_fair_center(
    points: Sequence[PointLike],
    constraint: FairnessConstraint,
    metric: MetricFn = euclidean,
) -> ClusteringSolution:
    """Optimal fair-center solution by exhaustive enumeration.

    Every subset of at most ``k`` points respecting the per-color capacities
    is considered; the one of minimum radius is returned.  The pairwise
    distance matrix is computed once up front — the enumeration itself never
    calls the metric.
    """
    _check_size(points)
    plain = strip_stream_items(points)
    if not plain:
        return ClusteringSolution(centers=[], radius=0.0)

    matrix = pairwise_distances(plain, metric)
    best_centers: list[Point] | None = None
    best_radius = float("inf")
    k = min(constraint.k, len(plain))
    for size in range(1, k + 1):
        for combo in combinations(range(len(plain)), size):
            candidate = [plain[i] for i in combo]
            if not constraint.is_feasible(candidate):
                continue
            radius = _combo_radius(matrix, combo)
            if radius < best_radius:
                best_radius = radius
                best_centers = candidate
                if best_radius == 0.0:
                    break
        if best_radius == 0.0:
            break

    if best_centers is None:
        # No feasible non-empty center set (e.g. all capacities are for
        # colors absent from the data); report an empty, infinite solution.
        return ClusteringSolution(
            centers=[], radius=float("inf"), metadata={"algorithm": "exact_fair"}
        )
    return ClusteringSolution(
        centers=best_centers,
        radius=best_radius,
        coreset_size=len(plain),
        metadata={"algorithm": "exact_fair"},
    )


def exact_k_center(
    points: Sequence[PointLike],
    k: int,
    metric: MetricFn = euclidean,
) -> ClusteringSolution:
    """Optimal unconstrained k-center solution by exhaustive enumeration."""
    _check_size(points)
    plain = strip_stream_items(points)
    if not plain:
        return ClusteringSolution(centers=[], radius=0.0)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")

    matrix = pairwise_distances(plain, metric)
    best_centers: list[Point] | None = None
    best_radius = float("inf")
    k = min(k, len(plain))
    for size in range(1, k + 1):
        for combo in combinations(range(len(plain)), size):
            candidate = [plain[i] for i in combo]
            radius = _combo_radius(matrix, combo)
            if radius < best_radius:
                best_radius = radius
                best_centers = candidate
                if best_radius == 0.0:
                    break
        if best_radius == 0.0:
            break

    assert best_centers is not None
    return ClusteringSolution(
        centers=best_centers,
        radius=best_radius,
        coreset_size=len(plain),
        metadata={"algorithm": "exact_kcenter"},
    )


class ExactFairCenter:
    """Solver-protocol wrapper around :func:`exact_fair_center`."""

    approximation_factor = 1.0

    def solve(
        self,
        points: Sequence[PointLike],
        constraint: FairnessConstraint,
        metric: MetricFn = euclidean,
    ) -> ClusteringSolution:
        return exact_fair_center(points, constraint, metric)
