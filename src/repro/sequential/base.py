"""Common protocol for sequential fair-center solvers.

A *sequential solver* receives a finite point set and a fairness constraint
and returns a :class:`~repro.core.solution.ClusteringSolution`.  The
sliding-window algorithm is parameterised by such a solver (the paper's
algorithm ``A``), and the evaluation harness treats every solver uniformly
through this protocol.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, runtime_checkable

from ..core.config import FairnessConstraint
from ..core.geometry import Point, StreamItem
from ..core.metrics import euclidean
from ..core.solution import ClusteringSolution

PointLike = Point | StreamItem
MetricFn = Callable[[PointLike, PointLike], float]


@runtime_checkable
class FairCenterSolver(Protocol):
    """Anything that can solve fair center on a finite point set."""

    #: Worst-case approximation factor guaranteed by the solver (the paper's
    #: alpha); purely informational, used to derive delta from epsilon.
    approximation_factor: float

    def solve(
        self,
        points: Sequence[PointLike],
        constraint: FairnessConstraint,
        metric: MetricFn = euclidean,
    ) -> ClusteringSolution:  # pragma: no cover - protocol signature
        ...


def strip_stream_items(points: Sequence[PointLike]) -> list[Point]:
    """Convert stream items to bare points (keeping plain points as they are)."""
    return [p.point if isinstance(p, StreamItem) else p for p in points]
