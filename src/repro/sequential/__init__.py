"""Sequential (offline) solvers: baselines and the query-time solver ``A``."""

from .base import FairCenterSolver
from .brute_force import ExactFairCenter, exact_fair_center, exact_k_center
from .chen import ChenMatroidCenter, chen_matroid_center
from .gonzalez import (
    GonzalezKCenter,
    GonzalezResult,
    gonzalez,
    greedy_independent_heads,
)
from .jones import JonesFairCenter, jones_fair_center
from .kleindessner import CapacityAwareGreedy, capacity_aware_greedy
from .matching import BipartiteGraph, capacitated_matching, hopcroft_karp

__all__ = [
    "BipartiteGraph",
    "CapacityAwareGreedy",
    "ChenMatroidCenter",
    "ExactFairCenter",
    "FairCenterSolver",
    "GonzalezKCenter",
    "GonzalezResult",
    "JonesFairCenter",
    "capacitated_matching",
    "capacity_aware_greedy",
    "chen_matroid_center",
    "exact_fair_center",
    "exact_k_center",
    "gonzalez",
    "greedy_independent_heads",
    "hopcroft_karp",
    "jones_fair_center",
]
