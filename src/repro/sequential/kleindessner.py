"""Capacity-aware greedy heuristic for fair k-center.

The paper's related-work section cites the heuristic-flavoured fair k-center
algorithm of Kleindessner et al. (ICML 2019, approximation factor
``3 * 2^(l-1) - 1``).  As an additional comparator (used by the ablation
benchmark on the choice of the sequential solver ``A``) this module provides a
*capacity-aware greedy*: Gonzalez's farthest-point traversal modified to skip
points whose color capacity is exhausted.

It is deliberately simple — linear time, no matching — and in practice lands
between the unconstrained greedy and the matching-based Jones algorithm in
solution quality.  Its worst-case factor is unbounded in contrived instances,
which the documentation and tests acknowledge; it is *not* a verbatim
re-implementation of the Kleindessner et al. recursive procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.backend import PointSet, as_point_set
from ..core.config import FairnessConstraint
from ..core.geometry import Color, Point
from ..core.metrics import distances_to_set, euclidean
from ..core.solution import ClusteringSolution, evaluate_radius
from .base import MetricFn, PointLike, strip_stream_items


@dataclass
class CapacityAwareGreedy:
    """Farthest-point greedy that never exceeds a color's capacity."""

    approximation_factor: float = float("inf")

    def solve(
        self,
        points: Sequence[PointLike],
        constraint: FairnessConstraint,
        metric: MetricFn = euclidean,
    ) -> ClusteringSolution:
        ps = as_point_set(points, metric)
        plain = strip_stream_items(ps.items)
        if not plain:
            return ClusteringSolution(
                centers=[],
                radius=0.0,
                coreset_size=0,
                metadata={"algorithm": "capacity_greedy"},
            )
        plain_ps = ps.replace_items(plain)

        remaining: dict[Color, int] = dict(constraint.capacities)
        centers: list[Point] = []
        chosen: set[int] = set()
        closest = np.full(len(plain), np.inf, dtype=float)

        # Seed with the first point whose color has capacity.
        seed = next(
            (i for i, p in enumerate(plain) if remaining.get(p.color, 0) > 0), None
        )
        if seed is None:
            return ClusteringSolution(
                centers=[],
                radius=float("inf"),
                coreset_size=len(plain),
                metadata={"algorithm": "capacity_greedy"},
            )
        self._add_center(plain_ps, seed, centers, chosen, remaining, closest, metric)

        while len(centers) < constraint.k:
            order = np.argsort(-closest)
            candidate = None
            for index in order:
                index = int(index)
                if index in chosen:
                    continue
                if remaining.get(plain[index].color, 0) <= 0:
                    continue
                candidate = index
                break
            if candidate is None or closest[candidate] == 0.0:
                break
            self._add_center(
                plain_ps, candidate, centers, chosen, remaining, closest, metric
            )

        radius = evaluate_radius(centers, plain_ps, metric)
        return ClusteringSolution(
            centers=centers,
            radius=radius,
            coreset_size=len(plain),
            metadata={"algorithm": "capacity_greedy"},
        )

    @staticmethod
    def _add_center(
        points: PointSet,
        index: int,
        centers: list[Point],
        chosen: set[int],
        remaining: dict[Color, int],
        closest: np.ndarray,
        metric: MetricFn,
    ) -> None:
        point = points[index]
        centers.append(point)
        chosen.add(index)
        remaining[point.color] = remaining.get(point.color, 0) - 1
        if points.is_vectorized:
            new_dists = points.distances_from(index)
        else:
            new_dists = np.asarray(
                distances_to_set(point, points.items, metric), dtype=float
            )
        np.minimum(closest, new_dists, out=closest)


def capacity_aware_greedy(
    points: Sequence[PointLike],
    constraint: FairnessConstraint,
    metric: MetricFn = euclidean,
) -> ClusteringSolution:
    """Functional convenience wrapper around :class:`CapacityAwareGreedy`."""
    return CapacityAwareGreedy().solve(points, constraint, metric)
