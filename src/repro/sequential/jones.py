"""Fair k-center via maximum matching (Jones, Nguyen, Nguyen — ICML 2020).

This is the fast 3-approximation sequential algorithm used both as the
strongest baseline (``Jones``) and as the solver ``A`` invoked by the
sliding-window algorithm's query procedure.

The construction follows the paper's recipe:

1. run Gonzalez's greedy farthest-point traversal to obtain ``k`` *heads*
   and the induced Voronoi clusters;
2. build the bipartite graph between heads and colors, with an edge
   ``(head, color)`` whenever the head's cluster contains at least one point
   of that color, and compute a maximum matching that respects the per-color
   capacities ``k_i``;
3. replace every matched head with the closest point of the matched color
   inside its own cluster (clusters are disjoint, so the chosen centers are
   automatically distinct);
4. repair phase: any head left unmatched, and any residual color capacity,
   is used greedily to cover the points currently farthest from the selected
   centers.  The repair phase can only decrease the radius.

The overall cost is ``O(nk)`` distance evaluations plus one small matching,
which is why this baseline is orders of magnitude faster than the
matroid-center baseline of Chen et al. (see the paper's Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.backend import PointSet, as_point_set
from ..core.config import FairnessConstraint
from ..core.geometry import Color, Point
from ..core.metrics import distances_to_set, euclidean
from ..core.solution import ClusteringSolution, evaluate_radius
from .base import MetricFn, PointLike, strip_stream_items
from .gonzalez import gonzalez
from .matching import capacitated_matching


def _cluster_members(assignment: Sequence[int], num_heads: int) -> list[list[int]]:
    members: list[list[int]] = [[] for _ in range(num_heads)]
    for point_index, head_index in enumerate(assignment):
        members[head_index].append(point_index)
    return members


@dataclass
class JonesFairCenter:
    """Solver object exposing the Jones et al. algorithm.

    Attributes
    ----------
    approximation_factor:
        The factor guaranteed by the original analysis (3); used by the
        sliding-window layer to derive δ from ε (Theorem 1).
    use_repair_phase:
        Whether to run the greedy repair phase (step 4 above).  Disabling it
        reproduces the bare matching construction; it is kept as a switch for
        ablation benchmarks.
    """

    approximation_factor: float = 3.0
    use_repair_phase: bool = True

    def solve(
        self,
        points: Sequence[PointLike],
        constraint: FairnessConstraint,
        metric: MetricFn = euclidean,
    ) -> ClusteringSolution:
        ps = as_point_set(points, metric)
        plain = strip_stream_items(ps.items)
        if not plain:
            return ClusteringSolution(
                centers=[], radius=0.0, coreset_size=0, metadata={"algorithm": "jones"}
            )
        # Stripping stream items does not change coordinates, so the point
        # set's (n, d) matrix is reused as-is for every later kernel call.
        plain_ps = ps.replace_items(plain)

        k = constraint.k
        greedy = gonzalez(plain_ps, k, metric)
        clusters = _cluster_members(greedy.assignment, len(greedy.centers))

        center_indices, used_capacity = self._match_clusters_to_colors(
            plain, greedy, clusters, constraint, metric
        )

        if self.use_repair_phase:
            center_indices = self._repair(
                plain_ps, center_indices, used_capacity, constraint, metric
            )

        centers = [plain[i] for i in center_indices]
        radius = evaluate_radius(centers, plain_ps, metric)
        return ClusteringSolution(
            centers=centers,
            radius=radius,
            coreset_size=len(plain),
            metadata={
                "algorithm": "jones",
                "greedy_radius": greedy.radius,
                "num_heads": len(greedy.centers),
            },
        )

    def _match_clusters_to_colors(
        self,
        points: list[Point],
        greedy,
        clusters: list[list[int]],
        constraint: FairnessConstraint,
        metric: MetricFn,
    ) -> tuple[list[int], dict[Color, int]]:
        """Steps 2-3: capacitated matching and head replacement.

        Head-to-member distances are read from the precomputed
        ``head_distances`` matrix of the Gonzalez sweep instead of stacking
        every cluster's members into a fresh array per head.
        """
        edges: dict[int, list[Color]] = {}
        for head_index, member_indices in enumerate(clusters):
            colors_present = sorted(
                {points[i].color for i in member_indices}, key=repr
            )
            eligible = [c for c in colors_present if constraint.capacity(c) > 0]
            edges[head_index] = eligible

        matching = capacitated_matching(edges, dict(constraint.capacities))

        head_distances = greedy.head_distances
        center_indices: list[int] = []
        used_capacity: dict[Color, int] = {}
        for head_index, color in matching.items():
            member_indices = [
                i for i in clusters[head_index] if points[i].color == color
            ]
            if not member_indices:  # pragma: no cover - matching guarantees edges
                continue
            if head_distances is not None:
                dists = head_distances[head_index, member_indices]
            else:
                head = greedy.centers[head_index]
                dists = distances_to_set(
                    head, [points[i] for i in member_indices], metric
                )
            best = member_indices[int(np.argmin(dists))]
            center_indices.append(best)
            used_capacity[color] = used_capacity.get(color, 0) + 1
        return center_indices, used_capacity

    def _repair(
        self,
        points: PointSet,
        center_indices: list[int],
        used_capacity: dict[Color, int],
        constraint: FairnessConstraint,
        metric: MetricFn,
    ) -> list[int]:
        """Step 4: spend leftover capacity on the farthest uncovered points."""
        remaining = {
            color: constraint.capacity(color) - used_capacity.get(color, 0)
            for color in constraint.colors
        }
        budget = constraint.k - len(center_indices)
        if budget <= 0 or all(v <= 0 for v in remaining.values()):
            return center_indices

        center_indices = list(center_indices)
        used_points = set(center_indices)

        if points.is_vectorized:
            def distances_from(index: int) -> np.ndarray:
                return points.distances_from(index)
        else:
            def distances_from(index: int) -> np.ndarray:
                return np.asarray(
                    distances_to_set(points.items[index], points.items, metric),
                    dtype=float,
                )

        # Distance of every point from the current center set: one packed
        # many_to_many sweep over all selected centers (bitwise identical to
        # the former one-kernel-call-per-center minimum), with the scalar
        # per-center fallback for custom metrics.
        if center_indices and points.is_vectorized:
            closest = points.distances_between(center_indices).min(axis=0)
        elif center_indices:
            closest = distances_from(center_indices[0]).copy()
            for index in center_indices[1:]:
                np.minimum(closest, distances_from(index), out=closest)
        else:
            closest = np.full(len(points), np.inf, dtype=float)

        while budget > 0:
            order = np.argsort(-closest)
            chosen_index: int | None = None
            for candidate in order:
                candidate = int(candidate)
                if candidate in used_points:
                    continue
                color = points.items[candidate].color
                if remaining.get(color, 0) <= 0:
                    continue
                chosen_index = candidate
                break
            if chosen_index is None or closest[chosen_index] == 0.0:
                break
            color = points.items[chosen_index].color
            center_indices.append(chosen_index)
            used_points.add(chosen_index)
            remaining[color] -= 1
            budget -= 1
            np.minimum(closest, distances_from(chosen_index), out=closest)
        return center_indices


def jones_fair_center(
    points: Sequence[PointLike],
    constraint: FairnessConstraint,
    metric: MetricFn = euclidean,
) -> ClusteringSolution:
    """Functional convenience wrapper around :class:`JonesFairCenter`."""
    return JonesFairCenter().solve(points, constraint, metric)
