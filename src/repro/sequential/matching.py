"""Bipartite maximum matching (Hopcroft-Karp), with optional capacities.

The Jones et al. fair-center baseline and the ball-feasibility test of the
Chen et al. reduction both boil down to a bipartite matching question:
"can every cluster head be assigned a color, without exceeding the color
capacities?".  This module implements:

* :class:`BipartiteGraph` -- a small adjacency-list container;
* :func:`hopcroft_karp` -- maximum matching in O(E sqrt(V));
* :func:`capacitated_matching` -- maximum "matching" where each right-hand
  vertex may be matched up to ``capacity[v]`` times (implemented by cloning
  right vertices, which keeps the code simple and is exact).

Everything is written from scratch; the test-suite cross-checks optimality
against networkx on random instances.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

LeftVertex = Hashable
RightVertex = Hashable

_INF = float("inf")


@dataclass
class BipartiteGraph:
    """Adjacency-list bipartite graph with hashable vertex labels."""

    adjacency: dict[LeftVertex, list[RightVertex]] = field(default_factory=dict)

    def add_left(self, u: LeftVertex) -> None:
        """Register a left vertex (no-op if already present)."""
        self.adjacency.setdefault(u, [])

    def add_edge(self, u: LeftVertex, v: RightVertex) -> None:
        """Add the edge ``(u, v)``; duplicate edges are ignored."""
        neighbours = self.adjacency.setdefault(u, [])
        if v not in neighbours:
            neighbours.append(v)

    @property
    def left_vertices(self) -> list[LeftVertex]:
        """All registered left vertices."""
        return list(self.adjacency.keys())

    @property
    def right_vertices(self) -> list[RightVertex]:
        """All right vertices appearing in at least one edge."""
        seen: dict[RightVertex, None] = {}
        for neighbours in self.adjacency.values():
            for v in neighbours:
                seen.setdefault(v, None)
        return list(seen.keys())

    def degree(self, u: LeftVertex) -> int:
        """Number of edges incident to the left vertex ``u``."""
        return len(self.adjacency.get(u, []))


def hopcroft_karp(graph: BipartiteGraph) -> dict[LeftVertex, RightVertex]:
    """Maximum-cardinality matching of a bipartite graph.

    Returns a mapping from matched left vertices to their partners; left
    vertices absent from the mapping are unmatched.
    """
    left = graph.left_vertices
    match_left: dict[LeftVertex, RightVertex | None] = {u: None for u in left}
    match_right: dict[RightVertex, LeftVertex | None] = {
        v: None for v in graph.right_vertices
    }
    distance: dict[LeftVertex, float] = {}

    def bfs() -> bool:
        queue: deque[LeftVertex] = deque()
        for u in left:
            if match_left[u] is None:
                distance[u] = 0.0
                queue.append(u)
            else:
                distance[u] = _INF
        reachable_free_right = False
        while queue:
            u = queue.popleft()
            for v in graph.adjacency[u]:
                partner = match_right[v]
                if partner is None:
                    reachable_free_right = True
                elif distance[partner] == _INF:
                    distance[partner] = distance[u] + 1.0
                    queue.append(partner)
        return reachable_free_right

    def dfs(u: LeftVertex) -> bool:
        for v in graph.adjacency[u]:
            partner = match_right[v]
            if partner is None or (
                distance[partner] == distance[u] + 1.0 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INF
        return False

    while bfs():
        for u in left:
            if match_left[u] is None:
                dfs(u)

    return {u: v for u, v in match_left.items() if v is not None}


def capacitated_matching(
    edges: Mapping[LeftVertex, Iterable[RightVertex]],
    capacities: Mapping[RightVertex, int],
) -> dict[LeftVertex, RightVertex]:
    """Maximum assignment of left vertices to capacitated right vertices.

    Each left vertex is matched to at most one right vertex; each right
    vertex ``v`` is used at most ``capacities[v]`` times.  Right vertices
    missing from ``capacities`` are treated as having capacity zero.

    Returns a mapping from matched left vertices to the right vertex they are
    assigned to (clone indices are stripped).
    """
    graph = BipartiteGraph()
    for u, neighbours in edges.items():
        graph.add_left(u)
        for v in neighbours:
            capacity = capacities.get(v, 0)
            for clone in range(capacity):
                graph.add_edge(u, (v, clone))
    matching = hopcroft_karp(graph)
    return {u: v_clone[0] for u, v_clone in matching.items()}


def matching_size(matching: Mapping[LeftVertex, RightVertex]) -> int:
    """Number of matched left vertices."""
    return len(matching)


def is_perfect_on_left(
    matching: Mapping[LeftVertex, RightVertex], left: Iterable[LeftVertex]
) -> bool:
    """Whether every vertex of ``left`` is matched."""
    return all(u in matching for u in left)
