"""Declarative sweep specifications for the dimensionality benchmarks.

A :class:`SweepSpec` names *what* to measure — which paper figures, which
dimensionalities, which distance backends and floating-point precisions —
and :meth:`SweepSpec.expand` turns it into the flat list of
:class:`SweepCell` jobs the :class:`~repro.bench.runner.SweepRunner`
executes.  The grid is figure-major and deterministic: cells are ordered by
(figure, dimension, backend, dtype), so two runs of the same spec produce
row-for-row comparable output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.backend import validate_backend
from ..experiments.common import ExperimentScale, get_scale

#: Figures covered by the dimensionality sweeps: Figure 4 (blobs, the cost
#: grows with the dimension) and Figure 5 (rotated, the cost stays flat as
#: the *ambient* dimension grows).
SWEEP_FIGURES = ("4", "5")

#: Concrete dtypes a sweep cell may pin (``auto`` is deliberately excluded:
#: every row must carry an unambiguous identity).
SWEEP_DTYPES = ("float64", "float32")

#: The rotated datasets embed a 3-d base stream, so their ambient dimension
#: can never be smaller than this.
ROTATED_BASE_DIMENSION = 3


@dataclass(frozen=True)
class SweepCell:
    """One executable job of an expanded sweep grid.

    A cell pins every knob that affects the measurement: the paper figure
    (which selects the dataset family), the dimensionality, the distance
    backend (``auto`` = vectorized kernels, ``scalar`` = pure-Python
    oracle) and the kernel dtype.  Cells are value objects; the runner
    never mutates them.
    """

    figure: str
    dataset: str
    dimension: int
    backend: str
    dtype: str

    @property
    def label(self) -> str:
        """Human-readable cell identity (used for progress reporting)."""
        return (
            f"figure{self.figure} {self.dataset} "
            f"backend={self.backend} dtype={self.dtype}"
        )

    @property
    def dimension_column(self) -> str:
        """Name of the identity column carrying this cell's dimensionality.

        Figure 4 varies the intrinsic ``dimension`` of the blobs mixture;
        Figure 5 varies the ``ambient_dimension`` of the rotated embedding.
        """
        return "dimension" if self.figure == "4" else "ambient_dimension"


@dataclass(frozen=True)
class SweepSpec:
    """A figure × dimension × backend × dtype benchmark grid.

    Parameters
    ----------
    figures:
        Which of the dimensionality figures to sweep (subset of
        :data:`SWEEP_FIGURES`).
    backends:
        ``REPRO_BACKEND`` modes to pin per cell (``auto`` and/or
        ``scalar``).
    dtypes:
        ``REPRO_DTYPE`` precisions to pin per cell (``float64`` and/or
        ``float32``).  Running both is how the float32-vs-float64
        throughput comparison of the docs benchmarks page is produced.
    scale:
        Experiment scale name (``tiny`` / ``small`` / ``full``); ``None``
        defers to the ``REPRO_SCALE`` environment variable.
    deltas:
        Coreset precisions δ at which ``Ours`` runs in every cell.
    dimensions:
        Optional dimensionality override.  Either a flat sequence applied
        to every selected figure, or a ``{figure: dimensions}`` mapping;
        ``None`` uses the scale's per-figure defaults
        (``blob_dimensions`` / ``rotated_dimensions``).
    repeats:
        How many times each cell is measured.  With ``repeats > 1`` the
        runner reports the *median* of the timing columns across the
        repeats, which is what ``check_trend.py`` should gate on noisy
        runners; all other columns come from the first repeat (the drivers
        are deterministic given the seed).
    seed:
        Random seed forwarded to the dataset generators.
    """

    figures: tuple[str, ...] = SWEEP_FIGURES
    backends: tuple[str, ...] = ("auto",)
    dtypes: tuple[str, ...] = ("float64", "float32")
    scale: str | None = None
    deltas: tuple[float, ...] = (0.5, 2.0)
    dimensions: tuple[int, ...] | Mapping[str, Sequence[int]] | None = None
    repeats: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.figures:
            raise ValueError("a sweep needs at least one figure")
        for figure in self.figures:
            if figure not in SWEEP_FIGURES:
                raise ValueError(
                    f"unknown sweep figure {figure!r}; choose from "
                    f"{', '.join(SWEEP_FIGURES)}"
                )
        if len(set(self.figures)) != len(self.figures):
            raise ValueError(f"duplicate figures in {self.figures}")
        if not self.backends:
            raise ValueError("a sweep needs at least one backend")
        for backend in self.backends:
            validate_backend(backend)
        if not self.dtypes:
            raise ValueError("a sweep needs at least one dtype")
        for dtype in self.dtypes:
            if dtype not in SWEEP_DTYPES:
                raise ValueError(
                    f"unknown sweep dtype {dtype!r}; choose from "
                    f"{', '.join(SWEEP_DTYPES)}"
                )
        if not self.deltas or any(d <= 0 for d in self.deltas):
            raise ValueError(f"deltas must be positive, got {self.deltas}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be at least 1, got {self.repeats}")

    def resolve_scale(self) -> ExperimentScale:
        """The :class:`ExperimentScale` this spec runs at."""
        return get_scale(self.scale)

    def dimensions_for(self, figure: str, scale: ExperimentScale) -> tuple[int, ...]:
        """The dimensionalities swept for ``figure`` at ``scale``.

        Raises ``ValueError`` for dimensions the figure's dataset family
        cannot produce (positive everywhere; the rotated embeddings of
        Figure 5 additionally need at least their 3-d base dimension).
        """
        override = self.dimensions
        dimensions: tuple[int, ...]
        if override is None:
            dimensions = (
                scale.blob_dimensions if figure == "4" else scale.rotated_dimensions
            )
        elif isinstance(override, Mapping):
            if figure in override:
                dimensions = tuple(int(d) for d in override[figure])
            else:
                dimensions = (
                    scale.blob_dimensions
                    if figure == "4"
                    else scale.rotated_dimensions
                )
        else:
            dimensions = tuple(int(d) for d in override)
        floor = 1 if figure == "4" else ROTATED_BASE_DIMENSION
        for dimension in dimensions:
            if dimension < floor:
                raise ValueError(
                    f"figure {figure} cannot sweep dimension {dimension}: "
                    f"its dataset family needs at least {floor} dimensions"
                )
        return dimensions

    def expand(self) -> list[SweepCell]:
        """The flat, deterministically ordered cell list of this grid."""
        scale = self.resolve_scale()
        cells: list[SweepCell] = []
        for figure in self.figures:
            family = "blobs" if figure == "4" else "rotated"
            for dimension in self.dimensions_for(figure, scale):
                for backend in self.backends:
                    for dtype in self.dtypes:
                        cells.append(
                            SweepCell(
                                figure=figure,
                                dataset=f"{family}-{dimension}d",
                                dimension=dimension,
                                backend=backend,
                                dtype=dtype,
                            )
                        )
        return cells
