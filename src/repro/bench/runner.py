"""Execution engine for the declarative dimensionality sweeps.

The :class:`SweepRunner` walks the cell grid of a
:class:`~repro.bench.spec.SweepSpec` and, for every cell, pins the global
distance backend and kernel dtype (:func:`~repro.core.backend.use_backend` /
:func:`~repro.core.backend.use_dtype`) before delegating to the figure's
``run_cell`` driver.  Each cell therefore converts its stream's coordinates
exactly once, into one :class:`~repro.core.backend.CoordinateArena` created
under the cell's dtype and shared by every contender of the cell (the
evaluation harness's ``share_arena`` machinery).

Results come back as a :class:`SweepResult`, which knows how to

* flatten the per-cell rows (each stamped with its ``backend`` and
  ``dtype`` identity columns),
* emit one ``BENCH_figure<N>_sweep.json`` payload per figure in exactly the
  shape ``benchmarks/check_trend.py`` gates on (``scale`` header, identity
  ``columns``, µs mirrors of the millisecond timings), and
* summarise the float32-vs-float64 throughput comparison
  (:meth:`SweepResult.dtype_comparison`) reported on the docs benchmarks
  page.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..core.backend import use_backend, use_dtype
from ..experiments import figure4, figure5
from .spec import SweepCell, SweepSpec

#: millisecond row keys mirrored as microseconds in the JSON payloads, so
#: the hot-path timings are tracked at the resolution the paper reports.
_MS_TO_US_KEYS = ("update_ms", "query_ms")

#: identity columns of a sweep row, in payload order.  ``dimension`` /
#: ``ambient_dimension`` is inserted per figure between ``dataset`` and
#: ``algorithm``.
_IDENTITY_PREFIX = ("figure", "dataset")
_IDENTITY_SUFFIX = ("algorithm", "backend", "dtype")

#: measured columns appended after the identity columns.
_METRIC_COLUMNS = (
    "queries",
    "radius",
    "approx_ratio",
    "memory_points",
    "update_ms",
    "query_ms",
    "update_us",
    "query_us",
    "coreset_size",
    "always_fair",
)

_CELL_DRIVERS = {"4": figure4.run_cell, "5": figure5.run_cell}


def sweep_payload_name(figure: str) -> str:
    """The payload/table name of one figure's sweep (``figure4_sweep``...)."""
    return f"figure{figure}_sweep"


def _with_us_mirrors(row: dict) -> dict:
    out = dict(row)
    for key in _MS_TO_US_KEYS:
        value = out.get(key)
        if isinstance(value, (int, float)):
            out[key.replace("_ms", "_us")] = value * 1000.0
    return out


def _median_timing_rows(rows_per_repeat: list[list[dict]]) -> list[dict]:
    """Collapse repeated cell measurements into one row set.

    Identity and deterministic metric columns come from the first repeat;
    the timing columns are replaced by their median across repeats, which
    is robust to the one-off scheduler hiccups that plague shared runners.
    Falls back to the first repeat when a driver produced repeat runs of
    different shapes (deterministic drivers never do).
    """
    first = rows_per_repeat[0]
    if any(len(rows) != len(first) for rows in rows_per_repeat[1:]):
        return first
    merged: list[dict] = []
    for index, base in enumerate(first):
        row = dict(base)
        for key in _MS_TO_US_KEYS:
            samples = [
                rows[index].get(key)
                for rows in rows_per_repeat
                if isinstance(rows[index].get(key), (int, float))
            ]
            if len(samples) == len(rows_per_repeat):
                row[key] = statistics.median(samples)
        merged.append(row)
    return merged


@dataclass
class CellResult:
    """The rows of one executed sweep cell plus its wall-clock cost."""

    cell: SweepCell
    rows: list[dict]
    elapsed_s: float


@dataclass
class SweepResult:
    """Everything a finished sweep produced."""

    spec: SweepSpec
    scale_name: str
    cells: list[CellResult] = field(default_factory=list)

    def rows(self, figure: str | None = None) -> list[dict]:
        """The flattened result rows (optionally of a single figure)."""
        rows: list[dict] = []
        for result in self.cells:
            if figure is None or result.cell.figure == figure:
                rows.extend(result.rows)
        return rows

    def figures(self) -> list[str]:
        """The figures that actually produced rows, in spec order."""
        return [f for f in self.spec.figures if self.rows(f)]

    def columns_for(self, figure: str) -> list[str]:
        """Identity-then-metrics column order of one figure's payload."""
        dimension_column = "dimension" if figure == "4" else "ambient_dimension"
        return [
            *_IDENTITY_PREFIX,
            dimension_column,
            *_IDENTITY_SUFFIX,
            *_METRIC_COLUMNS,
        ]

    def payload(self, figure: str) -> dict:
        """One figure's sweep as a ``BENCH_*.json``-shaped payload."""
        backends = sorted({c.cell.backend for c in self.cells})
        dtypes = sorted({c.cell.dtype for c in self.cells})
        return {
            "name": sweep_payload_name(figure),
            "scale": self.scale_name,
            "repeats": self.spec.repeats,
            "backend": backends[0] if len(backends) == 1 else "mixed",
            "dtype": dtypes[0] if len(dtypes) == 1 else "mixed",
            "python": platform.python_version(),
            "columns": self.columns_for(figure),
            "rows": [_with_us_mirrors(row) for row in self.rows(figure)],
        }

    def write(self, directory: str | Path) -> list[Path]:
        """Write one ``BENCH_figure<N>_sweep.json`` per swept figure.

        The files land in ``directory`` (created when missing) and are
        byte-compatible with the committed ``benchmarks/baselines/``
        entries, so ``benchmarks/check_trend.py`` can gate them directly.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for figure in self.figures():
            path = directory / f"BENCH_{sweep_payload_name(figure)}.json"
            path.write_text(
                json.dumps(self.payload(figure), indent=2, default=str) + "\n"
            )
            written.append(path)
        return written

    def dtype_comparison(self) -> list[dict]:
        """float64-vs-float32 speedups per (figure, dimension, algorithm).

        For every pair of rows identical up to ``dtype``, reports the
        float64/float32 timing ratios (> 1 means float32 is faster).  Rows
        without a counterpart (single-dtype sweeps) are omitted.
        """
        by_key: dict[tuple, dict[str, dict]] = {}
        for result in self.cells:
            dimension_column = result.cell.dimension_column
            for row in result.rows:
                key = (
                    row.get("figure"),
                    row.get("dataset"),
                    row.get(dimension_column),
                    row.get("algorithm"),
                    row.get("backend"),
                )
                by_key.setdefault(key, {})[row["dtype"]] = row
        comparison: list[dict] = []
        for key in sorted(by_key, key=repr):
            pair = by_key[key]
            if "float64" not in pair or "float32" not in pair:
                continue
            f64, f32 = pair["float64"], pair["float32"]
            figure, dataset, dimension, algorithm, backend = key
            entry = {
                "figure": figure,
                "dataset": dataset,
                "dimension": dimension,
                "algorithm": algorithm,
                "backend": backend,
            }
            for metric in ("update_ms", "query_ms"):
                old, new = f64.get(metric), f32.get(metric)
                if isinstance(old, (int, float)) and isinstance(new, (int, float)):
                    entry[metric.replace("_ms", "_speedup")] = (
                        round(old / new, 3) if new > 0 else None
                    )
            comparison.append(entry)
        return comparison


def _execute_cell(
    cell: SweepCell,
    scale_name: str,
    deltas: Sequence[float],
    repeats: int,
    seed: int,
) -> tuple[list[dict], float]:
    """Run one sweep cell in the current process.

    This is the unit of work of both the sequential and the process-parallel
    executors, so it is a module-level (picklable) function that re-derives
    everything from plain values: the cell pins its own backend/dtype pair
    (child processes inherit neither the parent's context managers nor its
    ``REPRO_BACKEND`` resolution), the scale is looked up by name, and the
    identity columns are stamped onto every produced row.
    """
    from ..experiments.common import get_scale

    scale = get_scale(scale_name)
    driver = _CELL_DRIVERS[cell.figure]
    start = time.perf_counter()
    rows_per_repeat: list[list[dict]] = []
    with use_backend(cell.backend), use_dtype(cell.dtype):
        for _ in range(repeats):
            rows_per_repeat.append(
                driver(cell.dimension, scale=scale, deltas=deltas, seed=seed)
            )
    elapsed = time.perf_counter() - start
    rows = rows_per_repeat[0] if repeats == 1 else _median_timing_rows(rows_per_repeat)
    for row in rows:
        row["backend"] = cell.backend
        row["dtype"] = cell.dtype
    return rows, elapsed


class SweepRunner:
    """Execute a :class:`SweepSpec`, cell by cell, in grid order.

    Parameters
    ----------
    progress:
        Optional callback invoked with a one-line message before and after
        every cell (the CLI wires it to ``print``; tests and library
        callers usually leave it off).
    jobs:
        Number of worker processes.  ``1`` (the default) runs every cell in
        this process; higher values fan the cells out over a
        ``ProcessPoolExecutor`` while preserving the deterministic grid
        order of the results.  Cells are independent by construction (each
        pins its own backend/dtype and builds its own streams), so the
        rows are identical to a sequential run up to the timing columns.
    """

    def __init__(
        self,
        *,
        progress: Callable[[str], None] | None = None,
        jobs: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._progress = progress
        self._jobs = jobs

    def _report(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def run(self, spec: SweepSpec) -> SweepResult:
        """Run every cell of ``spec`` and collect the results.

        Each cell runs under its own pinned backend/dtype pair; the
        per-cell drivers (``figure4.run_cell`` / ``figure5.run_cell``)
        build their streams and share one coordinate arena per cell.  The
        cell's identity columns are stamped onto every row it produced.
        """
        scale = spec.resolve_scale()
        result = SweepResult(spec=spec, scale_name=scale.name)
        cells = spec.expand()
        if self._jobs > 1:
            self._run_parallel(spec, scale.name, cells, result)
            return result
        for index, cell in enumerate(cells, start=1):
            self._report(f"[{index}/{len(cells)}] {cell.label} ...")
            rows, elapsed = _execute_cell(
                cell, scale.name, spec.deltas, spec.repeats, spec.seed
            )
            result.cells.append(CellResult(cell=cell, rows=rows, elapsed_s=elapsed))
            self._report_done(index, len(cells), cell, elapsed, len(rows), spec)
        return result

    def _run_parallel(
        self,
        spec: SweepSpec,
        scale_name: str,
        cells: Sequence[SweepCell],
        result: SweepResult,
    ) -> None:
        """Fan the cells out over worker processes, collect in grid order."""
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self._jobs, len(cells)) or 1
        self._report(f"running {len(cells)} cells across {workers} processes")
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _execute_cell,
                    cell,
                    scale_name,
                    spec.deltas,
                    spec.repeats,
                    spec.seed,
                )
                for cell in cells
            ]
            for index, (cell, future) in enumerate(zip(cells, futures), start=1):
                rows, elapsed = future.result()
                result.cells.append(
                    CellResult(cell=cell, rows=rows, elapsed_s=elapsed)
                )
                self._report_done(index, len(cells), cell, elapsed, len(rows), spec)

    def _report_done(self, index, total, cell, elapsed, num_rows, spec) -> None:
        repeat_note = f" ({spec.repeats} repeats, median)" if spec.repeats > 1 else ""
        self._report(
            f"[{index}/{total}] {cell.label} done in {elapsed:.2f}s "
            f"({num_rows} rows{repeat_note})"
        )


def run_sweep(
    *,
    figures: Sequence[str] = ("4", "5"),
    backends: Sequence[str] = ("auto",),
    dtypes: Sequence[str] = ("float64", "float32"),
    scale: str | None = None,
    deltas: Sequence[float] = (0.5, 2.0),
    dimensions: Sequence[int] | None = None,
    repeats: int = 1,
    seed: int = 0,
    jobs: int = 1,
    output_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """One-call convenience wrapper: build the spec, run it, write results.

    ``output_dir=None`` skips writing; otherwise one
    ``BENCH_figure<N>_sweep.json`` per figure lands there.  The
    environment's ``REPRO_SCALE`` applies when ``scale`` is ``None``.
    ``jobs`` > 1 runs the sweep cells in that many worker processes.
    """
    spec = SweepSpec(
        figures=tuple(figures),
        backends=tuple(backends),
        dtypes=tuple(dtypes),
        scale=scale,
        deltas=tuple(deltas),
        dimensions=tuple(dimensions) if dimensions is not None else None,
        repeats=repeats,
        seed=seed,
    )
    result = SweepRunner(progress=progress, jobs=jobs).run(spec)
    if output_dir is not None:
        result.write(output_dir)
    return result
