"""``repro.bench`` — declarative dimensionality-sweep orchestration.

This package replaces the ad-hoc per-figure benchmark scripts for the
paper's high-dimensional experiments (Figures 4 and 5) with a single
declarative layer:

* :class:`~repro.bench.spec.SweepSpec` describes a
  figure × dimension × backend × dtype grid;
* :class:`~repro.bench.runner.SweepRunner` executes it cell by cell, each
  cell pinning its backend/dtype pair and sharing one coordinate arena;
* :class:`~repro.bench.runner.SweepResult` emits
  ``BENCH_figure<N>_sweep.json`` payloads that the benchmark trend gate
  (``benchmarks/check_trend.py``) diffs against the committed baselines,
  plus the float32-vs-float64 throughput comparison.

The ``repro-experiments sweep`` CLI sub-command is the command-line
front-end; :func:`~repro.bench.runner.run_sweep` is the one-call library
entry point.
"""

from .runner import CellResult, SweepResult, SweepRunner, run_sweep, sweep_payload_name
from .spec import SWEEP_DTYPES, SWEEP_FIGURES, SweepCell, SweepSpec

__all__ = [
    "CellResult",
    "SWEEP_DTYPES",
    "SWEEP_FIGURES",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "run_sweep",
    "sweep_payload_name",
]
