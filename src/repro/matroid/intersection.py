"""Generic matroid intersection via augmenting paths in the exchange graph.

The Chen et al. matroid-center baseline reduces the feasibility question
"is there an independent set with one point in each of these disjoint balls?"
to a maximum-cardinality *matroid intersection* between the constraint matroid
(for fair center: the partition matroid over colors) and the partition matroid
induced by the balls.  This module implements the textbook augmenting-path
algorithm (Lawler / Edmonds) working purely through independence oracles, so
it applies to any pair of matroids from :mod:`repro.matroid`.

The algorithm repeatedly builds the exchange graph of the current common
independent set ``I`` and augments along a shortest source-to-sink path; each
augmentation grows ``|I|`` by one, and when no augmenting path exists ``I`` is
a maximum common independent set.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .base import Element, Matroid


def _shortest_augmenting_path(
    elements: list[Element],
    in_solution: set[Element],
    matroid_a: Matroid,
    matroid_b: Matroid,
) -> list[Element] | None:
    """Shortest augmenting path in the exchange graph, or ``None``.

    Sources are the elements outside ``I`` that can be added to ``I`` while
    keeping independence in ``matroid_a``; sinks are those addable with
    respect to ``matroid_b``.  Arcs encode single-element exchanges.
    """
    solution = [e for e in elements if e in in_solution]
    outside = [e for e in elements if e not in in_solution]

    sources = [x for x in outside if matroid_a.can_extend(solution, x)]
    sinks = {x for x in outside if matroid_b.can_extend(solution, x)}
    if not sources or not sinks:
        return None

    def removed(y: Element) -> list[Element]:
        return [e for e in solution if e != y]

    # Breadth-first search over the exchange graph.  Arcs:
    #   y in I  -> x not in I   when  I - y + x independent in matroid_a
    #   x not in I -> y in I    when  I - y + x independent in matroid_b
    parents: dict[Element, Element | None] = {s: None for s in sources}
    queue: deque[Element] = deque(sources)

    # A source that is also a sink is an augmenting path of length one.
    for s in sources:
        if s in sinks:
            return [s]

    while queue:
        node = queue.popleft()
        if node in in_solution:
            # node = y in I: neighbours are x outside with I - y + x indep in A.
            base = removed(node)
            for x in outside:
                if x in parents:
                    continue
                if matroid_a.is_independent(base + [x]):
                    parents[x] = node
                    if x in sinks:
                        return _reconstruct(parents, x)
                    queue.append(x)
        else:
            # node = x outside I: neighbours are y in I with I - y + x indep in B.
            for y in solution:
                if y in parents:
                    continue
                if matroid_b.is_independent(removed(y) + [node]):
                    parents[y] = node
                    queue.append(y)
    return None


def _reconstruct(parents: dict[Element, Element | None], end: Element) -> list[Element]:
    path: list[Element] = []
    node: Element | None = end
    while node is not None:
        path.append(node)
        node = parents[node]
    path.reverse()
    return path


def matroid_intersection(
    elements: Sequence[Element],
    matroid_a: Matroid,
    matroid_b: Matroid,
    *,
    target_size: int | None = None,
) -> list[Element]:
    """Maximum-cardinality common independent set of two matroids.

    Parameters
    ----------
    elements:
        The ground set (order influences tie-breaking only).
    matroid_a, matroid_b:
        The two matroids, given through their independence oracles.
    target_size:
        Optional early-exit threshold: the search stops as soon as a common
        independent set of this size is found (useful for feasibility tests
        such as "can every ball get a center?").
    """
    ground = list(dict.fromkeys(elements))
    solution: list[Element] = []
    in_solution: set[Element] = set()

    while target_size is None or len(solution) < target_size:
        path = _shortest_augmenting_path(ground, in_solution, matroid_a, matroid_b)
        if path is None:
            break
        # Augment: elements of the path alternate outside / inside I, starting
        # and ending outside; the symmetric difference grows |I| by one.
        for element in path:
            if element in in_solution:
                in_solution.remove(element)
            else:
                in_solution.add(element)
        solution = [e for e in ground if e in in_solution]
    return solution


def common_independent_set_of_size(
    elements: Sequence[Element],
    matroid_a: Matroid,
    matroid_b: Matroid,
    size: int,
) -> list[Element] | None:
    """A common independent set of exactly ``size`` elements, if one exists."""
    result = matroid_intersection(elements, matroid_a, matroid_b, target_size=size)
    if len(result) >= size:
        return result[:size]
    return None
