"""Matroid layer: independence oracles, concrete matroids, intersection."""

from .base import Matroid, verify_matroid_axioms
from .intersection import common_independent_set_of_size, matroid_intersection
from .partition import PartitionMatroid
from .transversal import TransversalMatroid
from .uniform import UniformMatroid

__all__ = [
    "Matroid",
    "PartitionMatroid",
    "TransversalMatroid",
    "UniformMatroid",
    "common_independent_set_of_size",
    "matroid_intersection",
    "verify_matroid_axioms",
]
