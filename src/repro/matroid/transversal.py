"""Transversal matroids, defined by a bipartite "eligibility" graph.

A transversal matroid is given by a family of subsets ``A_1, ..., A_m`` of the
ground set; a set is independent when it admits a system of distinct
representatives, i.e. a matching in the bipartite graph between the set's
elements and the family saturating all elements.

Within this library the transversal matroid serves two purposes:

* it is the natural home of the "one center per ball" side constraint of the
  Chen et al. matroid-center reduction (each disjoint ball defines one set of
  the family);
* it exercises the generic matroid machinery (oracle-based algorithms and
  matroid intersection) on a matroid that is *not* a partition matroid.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from .base import Element, Matroid


class TransversalMatroid(Matroid):
    """Matroid of partial transversals of a set family.

    Parameters
    ----------
    family:
        Mapping from set labels to the collection of ground-set elements each
        set contains.  Independence of ``S`` means that ``S`` can be matched
        into distinct sets of the family.
    """

    def __init__(self, family: Mapping[Hashable, Sequence[Element]]) -> None:
        self.family: dict[Hashable, frozenset[Element]] = {
            label: frozenset(members) for label, members in family.items()
        }

    def sets_containing(self, element: Element) -> list[Hashable]:
        """Labels of the family sets that contain ``element``."""
        return [label for label, members in self.family.items() if element in members]

    def is_independent(self, subset: Sequence[Element]) -> bool:
        elements = list(subset)
        if len(set(elements)) != len(elements):
            return False
        # Hopcroft-Karp would be overkill here: family sizes in this library
        # are small (at most k balls), so the classic Hungarian augmenting
        # path routine is simple and fast enough.
        match_of_label: dict[Hashable, Element] = {}

        def try_assign(element: Element, visited: set[Hashable]) -> bool:
            for label in self.sets_containing(element):
                if label in visited:
                    continue
                visited.add(label)
                if label not in match_of_label or try_assign(
                    match_of_label[label], visited
                ):
                    match_of_label[label] = element
                    return True
            return False

        for element in elements:
            if not try_assign(element, set()):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = {label: len(members) for label, members in self.family.items()}
        return f"TransversalMatroid(sets={sizes})"
