"""Matroid abstraction used by the fairness machinery.

The fair center problem is the matroid center problem specialised to the
*partition matroid* (at most ``k_i`` centers of color ``i``).  The Chen et
al. baseline is written against a generic independence oracle, so the package
ships a small but complete matroid layer:

* :class:`Matroid` -- abstract base class exposing ``is_independent`` and the
  derived operations (rank, maximal independent subset, extension checks);
* concrete matroids in :mod:`repro.matroid.uniform`,
  :mod:`repro.matroid.partition` and :mod:`repro.matroid.transversal`;
* generic matroid intersection in :mod:`repro.matroid.intersection`.

Ground-set elements can be any hashable objects; in this library they are
:class:`~repro.core.geometry.Point` or :class:`~repro.core.geometry.StreamItem`
instances.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable, Sequence

Element = Hashable


class Matroid(ABC):
    """Abstract matroid defined through an independence oracle.

    Subclasses must implement :meth:`is_independent`.  The default
    implementations of the derived operations only use the oracle, so any
    correct oracle yields a correct matroid.
    """

    @abstractmethod
    def is_independent(self, subset: Sequence[Element]) -> bool:
        """Whether ``subset`` is an independent set of the matroid."""

    def can_extend(self, independent: Sequence[Element], element: Element) -> bool:
        """Whether ``independent + [element]`` remains independent.

        The default implementation calls the oracle on the extended set;
        subclasses may override it with a cheaper incremental test.
        """
        return self.is_independent(list(independent) + [element])

    def maximal_independent_subset(
        self, elements: Iterable[Element]
    ) -> list[Element]:
        """Greedily grow a maximal independent subset of ``elements``.

        By the matroid exchange property every maximal independent subset of
        a set has the same size, so the greedy order does not affect the
        cardinality of the result (it may affect which elements are picked).
        """
        chosen: list[Element] = []
        for element in elements:
            if self.can_extend(chosen, element):
                chosen.append(element)
        return chosen

    def rank(self, elements: Iterable[Element]) -> int:
        """Rank of ``elements``: size of any maximal independent subset."""
        return len(self.maximal_independent_subset(elements))

    def is_maximal_within(
        self, independent: Sequence[Element], elements: Iterable[Element]
    ) -> bool:
        """Whether ``independent`` is maximal among subsets of ``elements``.

        ``independent`` must itself be independent and contained in
        ``elements``; the method then checks that no element of ``elements``
        can be added while preserving independence.
        """
        if not self.is_independent(independent):
            return False
        chosen = set(independent)
        for element in elements:
            if element in chosen:
                continue
            if self.can_extend(independent, element):
                return False
        return True


def verify_matroid_axioms(
    matroid: Matroid, ground_set: Sequence[Element], max_size: int | None = None
) -> bool:
    """Exhaustively verify the matroid axioms on a small ground set.

    Intended for tests only: the check enumerates every subset of
    ``ground_set`` (optionally truncated to subsets of size ``max_size``) and
    verifies downward closure and the augmentation property.
    """
    from itertools import combinations

    elements = list(ground_set)
    n = len(elements)
    limit = n if max_size is None else min(n, max_size)

    subsets: list[tuple[Element, ...]] = []
    for size in range(limit + 1):
        subsets.extend(combinations(elements, size))

    independent = [s for s in subsets if matroid.is_independent(s)]
    independent_set = set(independent)

    # The empty set must be independent.
    if () not in independent_set:
        return False

    # Downward closure: every subset of an independent set is independent.
    for subset in independent:
        for drop in range(len(subset)):
            smaller = subset[:drop] + subset[drop + 1 :]
            if smaller not in independent_set:
                return False

    # Augmentation: if |P| > |Q| are both independent there is an element of
    # P \ Q whose addition keeps Q independent.
    for larger in independent:
        for smaller in independent:
            if len(larger) <= len(smaller):
                continue
            candidates = [e for e in larger if e not in smaller]
            if not any(
                matroid.is_independent(tuple(smaller) + (e,)) for e in candidates
            ):
                return False
    return True
