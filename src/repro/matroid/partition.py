"""The partition matroid encoding the fairness constraint.

Ground-set elements are colored points; a set is independent when it contains
at most ``k_i`` elements of color ``i`` for every color.  This is exactly the
constraint of the fair center problem (Section 2 of the paper).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.config import FairnessConstraint
from ..core.geometry import Color, Point, StreamItem
from .base import Element, Matroid


def _default_color(element: Element) -> Color:
    if isinstance(element, (Point, StreamItem)):
        return element.color
    raise TypeError(
        "PartitionMatroid needs colored points or an explicit color_of function; "
        f"got element of type {type(element).__name__}"
    )


class PartitionMatroid(Matroid):
    """Partition matroid over colored elements.

    Parameters
    ----------
    constraint:
        The per-color capacities ``k_i``.
    color_of:
        Function extracting the color of a ground-set element.  Defaults to
        reading the ``color`` attribute of :class:`Point` / :class:`StreamItem`.
    """

    def __init__(
        self,
        constraint: FairnessConstraint,
        color_of: Callable[[Element], Color] = _default_color,
    ) -> None:
        self.constraint = constraint
        self.color_of = color_of

    @property
    def rank_bound(self) -> int:
        """The rank of the matroid, ``k = sum_i k_i``."""
        return self.constraint.k

    def is_independent(self, subset: Sequence[Element]) -> bool:
        elements = list(subset)
        if len(set(elements)) != len(elements):
            return False
        counts: dict[Color, int] = {}
        for element in elements:
            color = self.color_of(element)
            counts[color] = counts.get(color, 0) + 1
            if counts[color] > self.constraint.capacity(color):
                return False
        return True

    def can_extend(self, independent: Sequence[Element], element: Element) -> bool:
        if element in set(independent):
            return False
        color = self.color_of(element)
        used = sum(1 for e in independent if self.color_of(e) == color)
        return used + 1 <= self.constraint.capacity(color)

    def color_usage(self, subset: Sequence[Element]) -> dict[Color, int]:
        """Number of elements of each color in ``subset``."""
        counts: dict[Color, int] = {}
        for element in subset:
            color = self.color_of(element)
            counts[color] = counts.get(color, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartitionMatroid(capacities={dict(self.constraint.capacities)})"
