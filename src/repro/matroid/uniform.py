"""The uniform matroid: independent sets are the sets of size at most ``k``.

Using the uniform matroid as the constraint turns the matroid center problem
back into the classical unconstrained k-center problem, which is handy both
for testing the generic machinery and for running the matroid-center baseline
without fairness constraints.
"""

from __future__ import annotations

from typing import Sequence

from .base import Element, Matroid


class UniformMatroid(Matroid):
    """Matroid whose independent sets are all sets of cardinality <= ``k``."""

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.k = k

    def is_independent(self, subset: Sequence[Element]) -> bool:
        distinct = set(subset)
        if len(distinct) != len(list(subset)):
            return False
        return len(distinct) <= self.k

    def can_extend(self, independent: Sequence[Element], element: Element) -> bool:
        if element in set(independent):
            return False
        return len(independent) + 1 <= self.k

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformMatroid(k={self.k})"
