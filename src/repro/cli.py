"""Command-line front-end for the reproduction experiments.

Installed as ``repro-experiments`` (see ``pyproject.toml``).  Examples::

    repro-experiments list-datasets
    repro-experiments figure1 --scale tiny
    repro-experiments figure3 --dataset phones --csv results/figure3.csv
    repro-experiments ablation-solver --dataset higgs
    repro-experiments sweep --figure 4 --figure 5 --quick
    repro-experiments serve --streams 16 --shards 4
    repro-experiments serve --shards 4 --listen 127.0.0.1:7431
    repro-experiments ingest --streams 16 --shards 4 --workers process
    repro-experiments analyze src tests benchmarks
    repro-experiments analyze --select RPR002,RPR007 --format json src

Each figure sub-command regenerates the series of one figure of the paper
(or one ablation) and prints them as a plain-text table; ``--csv``
additionally writes the raw rows to a file.  ``sweep`` runs the declarative
dimensionality sweeps of :mod:`repro.bench` (Figures 4/5 across a
figure × dimension × backend × dtype grid) and emits trend-gated
``BENCH_figure<N>_sweep.json`` files.  ``serve`` and ``ingest`` drive the
sharded multi-stream serving layer over a dataset replayed as many
concurrent streams (``serve`` also fans out queries; ``ingest`` measures
pure ingest throughput).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Sequence

from .datasets.registry import PAPER_DATASETS, available_datasets, get_spec
from .evaluation.reporting import format_table, rows_to_csv
from .experiments import (
    ablation_beta,
    ablation_solver,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    get_scale,
)

_FIGURE_COLUMNS = {
    "figure1": ["dataset", "delta", "algorithm", "approx_ratio", "memory_points"],
    "figure2": ["dataset", "delta", "algorithm", "update_ms", "query_ms"],
    "figure3": ["dataset", "window_size", "algorithm", "memory_points", "query_ms"],
    "figure4": ["dimension", "algorithm", "query_ms", "memory_points"],
    "figure5": ["ambient_dimension", "algorithm", "query_ms", "memory_points"],
    "ablation-beta": ["dataset", "beta", "algorithm", "approx_ratio", "memory_points"],
    "ablation-solver": ["dataset", "algorithm", "approx_ratio", "query_ms"],
}


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "full"],
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--csv", default=None, help="also write the rows to this CSV file"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the experiments of 'Fair Center Clustering in "
            "Sliding Windows'"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-datasets", help="list the registered datasets")

    for name, help_text in [
        ("figure1", "approximation ratio and memory vs delta"),
        ("figure2", "update and query time vs delta"),
        ("figure3", "memory and query time vs window size"),
        ("figure4", "cost vs dimensionality on the blobs datasets"),
        ("figure5", "cost vs ambient dimensionality on the rotated datasets"),
        ("ablation-beta", "sensitivity to the guess progression beta"),
        ("ablation-solver", "choice of the sequential solver A on the coreset"),
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_options(sub)
        if name in ("figure1", "figure2"):
            sub.add_argument(
                "--dataset",
                action="append",
                default=None,
                help="dataset name (repeatable; default: phones, higgs, covtype)",
            )
        elif name in ("figure3", "ablation-beta", "ablation-solver"):
            sub.add_argument("--dataset", default="phones", help="dataset name")

    sweep = subparsers.add_parser(
        "sweep",
        help="declarative figure 4/5 dimensionality sweeps (repro.bench)",
    )
    sweep.add_argument(
        "--figure",
        action="append",
        choices=["4", "5"],
        default=None,
        help="figure to sweep (repeatable; default: both 4 and 5)",
    )
    sweep.add_argument(
        "--backend",
        action="append",
        choices=["auto", "scalar"],
        default=None,
        help="REPRO_BACKEND mode per cell (repeatable; default: auto)",
    )
    sweep.add_argument(
        "--dtype",
        action="append",
        choices=["float64", "float32"],
        default=None,
        help="kernel dtype per cell (repeatable; default: float64 and float32)",
    )
    sweep.add_argument(
        "--dimension",
        action="append",
        type=int,
        default=None,
        help="dimensionality override (repeatable; default: the scale's grid)",
    )
    sweep.add_argument(
        "--delta",
        action="append",
        type=float,
        default=None,
        help="coreset precision δ for Ours (repeatable; default: 0.5 and 2.0)",
    )
    sweep.add_argument(
        "--scale",
        choices=["tiny", "small", "full"],
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'small')",
    )
    sweep.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: force the 'tiny' scale (overrides --scale)",
    )
    sweep.add_argument("--seed", type=int, default=0, help="random seed")
    sweep.add_argument(
        "--output-dir",
        default="benchmarks/results",
        help="directory receiving BENCH_figure<N>_sweep.json "
        "(default: benchmarks/results; 'none' skips writing)",
    )
    sweep.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="measure each sweep cell this many times and report the "
        "median of the timing columns (default: 1)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run the sweep cells in this many worker processes "
        "(default: 1 = sequential; rows are identical up to timings)",
    )
    sweep.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the per-cell progress lines",
    )

    analyze = subparsers.add_parser(
        "analyze",
        help="run the repo-specific AST invariant checks (repro.analysis)",
    )
    from .analysis.cli import add_analyze_arguments

    add_analyze_arguments(analyze)

    for name, help_text in [
        ("serve", "sharded multi-stream serving demo: ingest + query fan-out"),
        ("ingest", "sharded multi-stream ingest throughput measurement"),
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--dataset", default="phones", help="dataset name")
        sub.add_argument("--streams", type=int, default=8, help="number of streams")
        sub.add_argument("--shards", type=int, default=4, help="number of shards")
        sub.add_argument(
            "--points", type=int, default=4000, help="total points across all streams"
        )
        sub.add_argument(
            "--window", type=int, default=200, help="window size per stream"
        )
        sub.add_argument("--delta", type=float, default=1.0, help="coreset precision δ")
        sub.add_argument(
            "--variant",
            choices=["ours", "oblivious", "dimension_free"],
            default="oblivious",
            help="algorithm served per stream (ours needs distance bounds)",
        )
        sub.add_argument(
            "--workers",
            choices=["thread", "process"],
            default="thread",
            help="shard worker flavour (process = one OS process per shard)",
        )
        sub.add_argument(
            "--window-policy",
            default="count",
            metavar="SPEC",
            help="window expiry policy per stream: 'count' (default, the "
            "paper's last-N-arrivals semantics), "
            "'event_time:span=S[,slack=L]' (watermarked event-time window; "
            "arrivals need a per-point timestamp), 'session:gap=G' or "
            "'decay:half_life=H[,span=S]'",
        )
        sub.add_argument(
            "--batch-size", type=int, default=32, help="shard drain batch size"
        )
        sub.add_argument(
            "--queue-capacity", type=int, default=2048, help="shard ingest queue bound"
        )
        sub.add_argument(
            "--checkpoint-dir",
            default=None,
            help="serving checkpoint directory: restored from when it holds a "
            "checkpoint, written to after the run (snapshot/restore demo)",
        )
        sub.add_argument(
            "--state-store",
            default=None,
            metavar="sqlite:PATH|dir:PATH",
            help="durable state store: with sqlite: every drain batch is "
            "persisted to a WAL-mode database as it is applied (crash loses "
            "at most one batch per shard) and the run restores from the "
            "store when it holds state; dir: keeps the pickle-directory "
            "format behind the same interface",
        )
        sub.add_argument(
            "--idle-ttl",
            type=float,
            default=None,
            help="evict streams idle for this many seconds (swept per drained "
            "batch; evicted streams revive transparently from their snapshot)",
        )
        sub.add_argument(
            "--revive-cache",
            type=int,
            default=0,
            help="per-shard LRU of recently evicted live windows (re-touched "
            "streams re-adopt their window without a snapshot replay; 0 "
            "disables the cache)",
        )
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        if name == "serve":
            sub.add_argument(
                "--listen",
                default=None,
                metavar="HOST:PORT",
                help="expose the service on a TCP port instead of running the "
                "local replay demo (port 0 picks a free one; the bound "
                "address is printed as 'serving on HOST:PORT'); speaks the "
                "length-prefixed JSON protocol of "
                "docs/architecture/serving-network.md and serves Prometheus "
                "text on GET /metrics",
            )
    return parser


def _serving_setup(args: argparse.Namespace) -> tuple[list, object, object]:
    """Dataset points, window factory and serving config shared by the
    ``serve``/``ingest`` replay demo and the ``serve --listen`` server."""
    from .datasets.registry import load_dataset
    from .experiments.common import estimate_distance_bounds, build_constraint
    from .core.config import SlidingWindowConfig
    from .serving import ServingConfig, WindowFactory

    points = load_dataset(args.dataset, args.points, seed=args.seed)
    constraint = build_constraint(points)
    dmin = dmax = None
    if args.variant in ("ours", "dimension_free"):
        dmin, dmax = estimate_distance_bounds(points)
    window_config = SlidingWindowConfig(
        window_size=args.window,
        constraint=constraint,
        delta=args.delta,
        dmin=dmin,
        dmax=dmax,
    )
    factory = WindowFactory(
        window_config, variant=args.variant, policy_spec=args.window_policy
    )
    serving_config = ServingConfig(
        num_shards=args.shards,
        queue_capacity=args.queue_capacity,
        batch_size=args.batch_size,
        workers=args.workers,
        idle_ttl=args.idle_ttl,
        revive_cache=args.revive_cache,
        state_store=args.state_store,
    )
    return points, factory, serving_config


def _build_or_restore_service(factory: object, serving_config: object) -> object:
    """A service continuing the state store's lineage when it holds one."""
    from .serving import MultiStreamService, make_store

    spec = serving_config.state_store
    if spec is not None and make_store(spec).has_state():
        print(f"restoring serving state from state store {spec}")
        return MultiStreamService.restore(
            spec, factory=factory, config=serving_config
        )
    return MultiStreamService(factory, serving_config)


def _parse_listen(listen: str) -> tuple[str, int]:
    host, _, port_text = listen.rpartition(":")
    if not host or not port_text:
        raise ValueError(f"--listen expects HOST:PORT, got {listen!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"--listen port must be an integer, got {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"--listen port out of range: {port}")
    return host, port


def _run_network_serve(args: argparse.Namespace) -> int:
    """Expose the serving layer on a TCP port until interrupted."""
    import asyncio
    import signal

    from .serving import AsyncMultiStreamService, ServingServer

    host, port = _parse_listen(args.listen)
    _, factory, serving_config = _serving_setup(args)

    async def _serve() -> None:
        # SIGINT and SIGTERM (systemd/container stop) both request a
        # graceful drain, delivered at a safe point on the event loop
        # rather than mid-bytecode like a raw signal handler would be.
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        handled: list[int] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-Unix loops
                continue
            handled.append(signum)
        try:
            service = _build_or_restore_service(factory, serving_config)
            async with AsyncMultiStreamService(service=service) as async_service:
                async with ServingServer(
                    async_service, host=host, port=port
                ) as server:
                    bound_host, bound_port = server.address
                    print(f"serving on {bound_host}:{bound_port}", flush=True)
                    if handled:
                        await stop.wait()
                        print("interrupted; shutting down", file=sys.stderr)
                    else:  # pragma: no cover - non-Unix loops
                        await server.serve_forever()
        finally:
            for signum in handled:
                loop.remove_signal_handler(signum)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        print("interrupted; shutting down", file=sys.stderr)
    return 0


def _run_serving(args: argparse.Namespace, with_queries: bool) -> int:
    """Drive the serving layer over a dataset replayed as many streams."""
    from .serving import MultiStreamService

    points, factory, serving_config = _serving_setup(args)
    stream_ids = [f"{args.dataset}-{i}" for i in range(args.streams)]
    arrivals = [
        (stream_ids[index % args.streams], point)
        for index, point in enumerate(points)
    ]

    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir and MultiStreamService.has_checkpoint(checkpoint_dir):
        print(f"restoring serving state from checkpoint {checkpoint_dir}")
        service = MultiStreamService.restore(
            checkpoint_dir, factory=factory, config=serving_config
        )
    else:
        service = _build_or_restore_service(factory, serving_config)

    start = time.perf_counter()
    with service:
        service.ingest_many(arrivals)
        service.flush()
        ingest_elapsed = time.perf_counter() - start
        stats = service.stats()
        fanout = service.query_all() if with_queries else None
        if checkpoint_dir:
            service.snapshot_to(checkpoint_dir)
            print(f"wrote serving checkpoint to {checkpoint_dir}")
        if serving_config.state_store is not None:
            service.snapshot_to()  # WAL fence (or full write on a dir store)
            store = service.store_stats()
            if store is not None:
                print(
                    f"state store {store.backend}:{store.path}: "
                    f"{store.wal_entries} WAL deltas pending, "
                    f"{store.bytes} bytes on disk"
                )
    throughput = len(arrivals) / ingest_elapsed if ingest_elapsed > 0 else 0.0

    shard_rows = [
        {
            "shard": s.shard,
            "streams": s.streams,
            "ingested": s.ingested,
            "batches": s.batches,
            "mean_batch": round(s.mean_batch, 2),
            "max_batch": s.max_batch,
        }
        for s in stats
    ]
    print(
        f"ingested {len(arrivals)} points over {args.streams} streams "
        f"on {args.shards} {args.workers} shards in {ingest_elapsed:.3f}s "
        f"({throughput:,.0f} points/s aggregate)"
    )
    print()
    print(
        format_table(
            shard_rows,
            ["shard", "streams", "ingested", "batches", "mean_batch", "max_batch"],
            title="per-shard ingest stats",
        )
    )
    if fanout is not None:
        latency_rows = [
            {
                "shard": s.shard,
                "streams": s.streams,
                "query_ms": round(s.elapsed_ms, 3),
            }
            for s in fanout.per_shard
        ]
        print()
        print(
            format_table(
                latency_rows,
                ["shard", "streams", "query_ms"],
                title="query fan-out latency",
            )
        )
        solution_rows = [
            {
                "stream": stream_id,
                "centers": solution.k,
                "radius": round(solution.radius, 4),
                "coreset": solution.coreset_size,
            }
            for stream_id, solution in sorted(fanout.solutions.items())
        ]
        print()
        print(
            format_table(
                solution_rows,
                ["stream", "centers", "radius", "coreset"],
                title="per-stream solutions",
            )
        )
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    """Drive the declarative dimensionality sweeps of :mod:`repro.bench`."""
    from .bench import run_sweep

    env_backend = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if env_backend and args.backend and env_backend not in args.backend:
        raise ValueError(
            f"conflicting backend selection: REPRO_BACKEND={env_backend!r} is "
            f"set but --backend pins {sorted(set(args.backend))}; the sweep "
            "pins the backend per cell, so the environment override would be "
            "silently ignored — drop one of the two"
        )
    output_dir = None if args.output_dir in (None, "none") else args.output_dir
    result = run_sweep(
        figures=tuple(args.figure) if args.figure else ("4", "5"),
        backends=tuple(args.backend) if args.backend else ("auto",),
        dtypes=tuple(args.dtype) if args.dtype else ("float64", "float32"),
        scale="tiny" if args.quick else args.scale,
        deltas=tuple(args.delta) if args.delta else (0.5, 2.0),
        dimensions=tuple(args.dimension) if args.dimension else None,
        repeats=args.repeats,
        seed=args.seed,
        jobs=args.jobs,
        output_dir=None,  # written below so the paths can be reported
        progress=None if args.no_progress else print,
    )
    for figure in result.figures():
        columns = [
            c
            for c in result.columns_for(figure)
            if c not in ("update_us", "query_us", "queries", "always_fair")
        ]
        print()
        print(
            format_table(
                result.rows(figure),
                columns,
                title=f"figure {figure} dimensionality sweep "
                f"(scale={result.scale_name})",
            )
        )
    comparison = result.dtype_comparison()
    if comparison:
        print()
        print(
            format_table(
                comparison,
                [
                    "figure",
                    "dataset",
                    "dimension",
                    "algorithm",
                    "update_speedup",
                    "query_speedup",
                ],
                title="float32 vs float64 (ratio of float64 to float32 timings; "
                ">1 means float32 is faster)",
            )
        )
    if output_dir is not None:
        for path in result.write(output_dir):
            print(f"wrote {path}")
    return 0


def _run_command(args: argparse.Namespace) -> list[dict]:
    scale = get_scale(args.scale) if args.scale else None
    if args.command in ("figure1", "figure2"):
        datasets: Sequence[str] = args.dataset or PAPER_DATASETS
        runner: Callable[..., list[dict]] = (
            figure1.run if args.command == "figure1" else figure2.run
        )
        return runner(datasets, scale=scale, seed=args.seed)
    if args.command == "figure3":
        return figure3.run(args.dataset, scale=scale, seed=args.seed)
    if args.command == "figure4":
        return figure4.run(scale=scale, seed=args.seed)
    if args.command == "figure5":
        return figure5.run(scale=scale, seed=args.seed)
    if args.command == "ablation-beta":
        return ablation_beta.run(args.dataset, scale=scale, seed=args.seed)
    if args.command == "ablation-solver":
        return ablation_solver.run(args.dataset, scale=scale, seed=args.seed)
    raise ValueError(f"unhandled command {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes follow the analysis contract tree-wide: 0 on success, 1 for
    command-specific failures (e.g. unsuppressed analysis findings), 2 for
    usage errors — including semantic ones argparse cannot see, such as an
    unknown dataset name or a ``--backend``/``REPRO_BACKEND`` conflict.
    """
    from .serving.store import CheckpointError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except CheckpointError as exc:
        # Missing/corrupt serving state is an operational failure (1), not
        # a usage error: the command was well-formed, the artifact is bad.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "analyze":
        from .analysis.cli import run_analyze

        return run_analyze(args)

    if args.command == "list-datasets":
        rows = [
            {
                "name": name,
                "dimension": get_spec(name).dimension,
                "colors": get_spec(name).num_colors,
                "description": get_spec(name).description,
            }
            for name in available_datasets()
        ]
        print(format_table(rows, ["name", "dimension", "colors", "description"]))
        return 0

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command in ("serve", "ingest"):
        if args.command == "serve" and args.listen is not None:
            return _run_network_serve(args)
        return _run_serving(args, with_queries=args.command == "serve")

    rows = _run_command(args)
    columns = _FIGURE_COLUMNS.get(args.command)
    print(format_table(rows, columns, title=f"{args.command} results"))
    if getattr(args, "csv", None):
        rows_to_csv(rows, args.csv)
        print(f"\nwrote {len(rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
