"""Command-line front-end for the reproduction experiments.

Installed as ``fair-center-bench`` (see ``pyproject.toml``).  Examples::

    fair-center-bench list-datasets
    fair-center-bench figure1 --scale tiny
    fair-center-bench figure3 --dataset phones --csv results/figure3.csv
    fair-center-bench ablation-solver --dataset higgs

Each sub-command regenerates the series of one figure of the paper (or one
ablation) and prints them as a plain-text table; ``--csv`` additionally
writes the raw rows to a file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .datasets.registry import PAPER_DATASETS, available_datasets, get_spec
from .evaluation.reporting import format_table, rows_to_csv
from .experiments import (
    ablation_beta,
    ablation_solver,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    get_scale,
)

_FIGURE_COLUMNS = {
    "figure1": ["dataset", "delta", "algorithm", "approx_ratio", "memory_points"],
    "figure2": ["dataset", "delta", "algorithm", "update_ms", "query_ms"],
    "figure3": ["dataset", "window_size", "algorithm", "memory_points", "query_ms"],
    "figure4": ["dimension", "algorithm", "query_ms", "memory_points"],
    "figure5": ["ambient_dimension", "algorithm", "query_ms", "memory_points"],
    "ablation-beta": ["dataset", "beta", "algorithm", "approx_ratio", "memory_points"],
    "ablation-solver": ["dataset", "algorithm", "approx_ratio", "query_ms"],
}


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=["tiny", "small", "full"],
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'small')",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--csv", default=None, help="also write the rows to this CSV file")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser of the CLI."""
    parser = argparse.ArgumentParser(
        prog="fair-center-bench",
        description="Reproduce the experiments of 'Fair Center Clustering in Sliding Windows'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-datasets", help="list the registered datasets")

    for name, help_text in [
        ("figure1", "approximation ratio and memory vs delta"),
        ("figure2", "update and query time vs delta"),
        ("figure3", "memory and query time vs window size"),
        ("figure4", "cost vs dimensionality on the blobs datasets"),
        ("figure5", "cost vs ambient dimensionality on the rotated datasets"),
        ("ablation-beta", "sensitivity to the guess progression beta"),
        ("ablation-solver", "choice of the sequential solver A on the coreset"),
    ]:
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_options(sub)
        if name in ("figure1", "figure2"):
            sub.add_argument(
                "--dataset",
                action="append",
                default=None,
                help="dataset name (repeatable; default: phones, higgs, covtype)",
            )
        elif name in ("figure3", "ablation-beta", "ablation-solver"):
            sub.add_argument("--dataset", default="phones", help="dataset name")
    return parser


def _run_command(args: argparse.Namespace) -> list[dict]:
    scale = get_scale(args.scale) if args.scale else None
    if args.command in ("figure1", "figure2"):
        datasets: Sequence[str] = args.dataset or PAPER_DATASETS
        runner: Callable[..., list[dict]] = (
            figure1.run if args.command == "figure1" else figure2.run
        )
        return runner(datasets, scale=scale, seed=args.seed)
    if args.command == "figure3":
        return figure3.run(args.dataset, scale=scale, seed=args.seed)
    if args.command == "figure4":
        return figure4.run(scale=scale, seed=args.seed)
    if args.command == "figure5":
        return figure5.run(scale=scale, seed=args.seed)
    if args.command == "ablation-beta":
        return ablation_beta.run(args.dataset, scale=scale, seed=args.seed)
    if args.command == "ablation-solver":
        return ablation_solver.run(args.dataset, scale=scale, seed=args.seed)
    raise ValueError(f"unhandled command {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list-datasets":
        rows = [
            {
                "name": name,
                "dimension": get_spec(name).dimension,
                "colors": get_spec(name).num_colors,
                "description": get_spec(name).description,
            }
            for name in available_datasets()
        ]
        print(format_table(rows, ["name", "dimension", "colors", "description"]))
        return 0

    rows = _run_command(args)
    columns = _FIGURE_COLUMNS.get(args.command)
    print(format_table(rows, columns, title=f"{args.command} results"))
    if getattr(args, "csv", None):
        rows_to_csv(rows, args.csv)
        print(f"\nwrote {len(rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
