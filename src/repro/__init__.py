"""Fair center clustering in sliding windows — reproduction library.

This package reproduces, in pure Python, the system of the EDBT 2026 paper
*"Fair Center Clustering in Sliding Windows"*: a space- and time-efficient
streaming algorithm that maintains a fair k-center solution over the most
recent ``n`` points of a stream, together with the sequential baselines it is
evaluated against and a benchmark harness regenerating every figure of the
paper's experimental section.

Quick start
-----------
::

    from repro import (FairSlidingWindow, FairnessConstraint,
                       SlidingWindowConfig, make_point)

    constraint = FairnessConstraint({"female": 2, "male": 2})
    config = SlidingWindowConfig(window_size=500, constraint=constraint,
                                 delta=1.0, dmin=0.01, dmax=100.0)
    algo = FairSlidingWindow(config)
    for coords, color in my_stream:
        algo.insert(make_point(coords, color))
    solution = algo.query()
    print(solution.centers, solution.radius)

Package map
-----------
``repro.core``
    Geometry, metrics, configuration, and the three streaming algorithms
    (``Ours``, ``OursOblivious``, the dimension-free Corollary 2 variant).
``repro.matroid``
    Matroid abstraction (partition / transversal / uniform) and generic
    matroid intersection.
``repro.sequential``
    Sequential solvers: Gonzalez, Jones et al., Chen et al., a
    capacity-aware greedy, and exact brute-force oracles.
``repro.streaming``
    Streams, the exact sliding-window buffer, the aspect-ratio estimator and
    the insertion-only streaming summary.
``repro.datasets``
    Synthetic generators (blobs, rotated), surrogates for the paper's UCI
    datasets, and CSV loaders for the real files.
``repro.evaluation`` / ``repro.experiments``
    The measurement harness and one driver per figure of the paper.
``repro.serving``
    Sharded multi-stream serving: a stream router, per-shard bounded ingest
    queues drained in batches (thread- or process-backed workers), a
    service façade with query fan-out and per-shard latency stats, plus the
    stateful lifecycle — snapshot/restore checkpointing, idle-stream TTL
    eviction and an asyncio ingestion front-end.
"""

from .core import (
    ClusteringSolution,
    DimensionFreeFairSlidingWindow,
    FairSlidingWindow,
    FairnessConstraint,
    ObliviousFairSlidingWindow,
    Point,
    SlidingWindowConfig,
    StreamItem,
    evaluate_radius,
    make_point,
    make_points,
)
from .sequential import (
    CapacityAwareGreedy,
    ChenMatroidCenter,
    JonesFairCenter,
    exact_fair_center,
    gonzalez,
)
from .serving import (
    AsyncMultiStreamService,
    MultiStreamService,
    ServingClient,
    ServingConfig,
    ServingServer,
    StreamRouter,
    WindowFactory,
)
from .streaming import ExactSlidingWindow, SlidingWindowBaseline, Stream

__version__ = "1.0.0"

__all__ = [
    "AsyncMultiStreamService",
    "CapacityAwareGreedy",
    "ChenMatroidCenter",
    "ClusteringSolution",
    "DimensionFreeFairSlidingWindow",
    "ExactSlidingWindow",
    "FairSlidingWindow",
    "FairnessConstraint",
    "JonesFairCenter",
    "MultiStreamService",
    "ObliviousFairSlidingWindow",
    "Point",
    "ServingClient",
    "ServingConfig",
    "ServingServer",
    "SlidingWindowBaseline",
    "SlidingWindowConfig",
    "Stream",
    "StreamItem",
    "StreamRouter",
    "WindowFactory",
    "evaluate_radius",
    "exact_fair_center",
    "gonzalez",
    "make_point",
    "make_points",
    "__version__",
]
