"""Engine for the repo-specific AST rules.

The framework is deliberately small: a :class:`Rule` is anything with a
``rule_id``, a one-line ``title`` and a ``check(ctx)`` generator; the engine
parses each file once into a :class:`FileContext` (source, AST, parent map,
suppression table) and hands it to every selected rule.  Files that do not
parse produce a finding themselves (rule id ``RPR000``) instead of aborting
the run, so the CLI exit-code contract holds even on broken trees:

* ``EXIT_CLEAN`` (0) — no findings;
* ``EXIT_FINDINGS`` (1) — at least one unsuppressed finding (including
  syntax errors);
* ``EXIT_USAGE`` (2) — bad invocation (unknown rule id, missing path).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Rule id reserved for files the engine itself cannot parse.
PARSE_ERROR_RULE_ID = "RPR000"

#: ``# repro: allow[RPR001]`` or ``# repro: allow[RPR001,RPR004] why``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")

#: Directory names never descended into when expanding directory arguments.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "build", "dist", "site", ".mypy_cache"}
)

#: Path segments that anchor a dotted module name for scoped rules.
_MODULE_ANCHORS = ("repro", "benchmarks", "tests")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


class Rule(Protocol):
    """A single invariant check over one parsed file."""

    rule_id: str
    title: str

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for ``ctx``; must not mutate the context."""
        ...


class FileContext:
    """Everything a rule needs about one file, parsed exactly once."""

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.display_path = _display_path(path)
        self.module = derive_module(path)
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = _collect_suppressions(self.lines)
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    # ------------------------------------------------------------- navigation

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing(
        self, node: ast.AST, kinds: tuple[type[ast.AST], ...]
    ) -> ast.AST | None:
        """Nearest ancestor of one of ``kinds`` (``None`` at module level)."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, kinds):
                return ancestor
        return None

    # ------------------------------------------------------------ suppression

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is allowed at ``line``.

        The suppression table is keyed by the line a comment *applies to*: an
        inline comment covers its own line, a standalone comment covers the
        line below it (see :func:`_collect_suppressions`).
        """
        allowed = self.suppressions.get(line)
        return allowed is not None and ("*" in allowed or rule_id in allowed)

    # ---------------------------------------------------------------- helpers

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )

    def in_package(self, *prefixes: str) -> bool:
        """Whether the file's dotted module falls under any of ``prefixes``."""
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


@dataclass
class Report:
    """Outcome of one engine run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.findings else EXIT_CLEAN

    def to_json(self) -> dict[str, object]:
        return {
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": self.suppressed,
            "files_scanned": self.files_scanned,
        }


def derive_module(path: Path) -> str | None:
    """Dotted module name anchored at ``repro``/``benchmarks``/``tests``.

    Works for both the real tree (``src/repro/core/backend.py``) and test
    fixture trees (``tmp/src/repro/core/backend.py``): the *last* anchor
    segment wins, so scoped rules apply to fixtures exactly as they do to
    the repository.
    """
    parts = path.parts
    anchor_index: int | None = None
    for index, part in enumerate(parts[:-1] if len(parts) > 1 else parts):
        if part in _MODULE_ANCHORS:
            anchor_index = index
    if anchor_index is None:
        if path.name.removesuffix(".py") in _MODULE_ANCHORS:
            return path.name.removesuffix(".py")
        return None
    dotted = list(parts[anchor_index:])
    dotted[-1] = dotted[-1].removesuffix(".py")
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _collect_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    table: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = frozenset(
            token.strip() for token in match.group(1).split(",") if token.strip()
        )
        if ids:
            target = number + 1 if text.lstrip().startswith("#") else number
            table[target] = table.get(target, frozenset()) | ids
    return table


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files and directories into a sorted, deduplicated ``.py`` list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen.add(candidate)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def load_context(path: Path) -> FileContext | Finding:
    """Parse ``path``; a syntax/decoding failure becomes a finding."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(
            path=_display_path(path),
            line=1,
            col=0,
            rule_id=PARSE_ERROR_RULE_ID,
            message=f"cannot read file: {exc}",
        )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            path=_display_path(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_RULE_ID,
            message=f"syntax error: {exc.msg}",
        )
    return FileContext(path, source, tree)


def analyze_paths(
    paths: Iterable[Path | str],
    rules: Sequence[Rule],
    *,
    select: Iterable[str] | None = None,
) -> Report:
    """Run ``rules`` (optionally narrowed by ``select``) over ``paths``."""
    selected = list(rules)
    if select is not None:
        wanted = set(select)
        selected = [rule for rule in rules if rule.rule_id in wanted]
    report = Report()
    for path in iter_python_files(paths):
        loaded = load_context(path)
        if isinstance(loaded, Finding):
            report.findings.append(loaded)
            report.files_scanned += 1
            continue
        report.files_scanned += 1
        for rule in selected:
            for finding in rule.check(loaded):
                if loaded.is_suppressed(finding.rule_id, finding.line):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
    report.findings.sort()
    return report
