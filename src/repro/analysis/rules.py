"""The repo-specific rule battery (RPR001–RPR011).

Each rule mechanizes an invariant that a past review cycle caught by hand;
the docstrings say *why* the invariant exists so a triggered finding reads
as a design note, not just a lint.  Rules are pure functions of a
:class:`~repro.analysis.framework.FileContext` — no filesystem access
except RPR008's one cached read of ``benchmarks/check_trend.py``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from .framework import FileContext, Finding

#: Mirror of ``benchmarks/check_trend.py`` — used by RPR008 when the
#: analyzed tree does not ship its own copy (e.g. fixture trees in tests).
FALLBACK_KEY_COLUMNS = (
    "figure",
    "dataset",
    "delta",
    "beta",
    "algorithm",
    "solver",
    "window_size",
    "dimension",
    "ambient_dimension",
    "backend",
    "dtype",
    "mode",
    "shards",
    "streams",
    "points",
)
FALLBACK_METRICS = (
    "update_ms",
    "query_ms",
    "update_us",
    "query_us",
    "elapsed_s",
    "points_per_sec",
)

#: ``np`` constructors that accept a dtype, with the positional index the
#: dtype would occupy (so ``np.zeros(n, float)`` counts as explicit).
_DTYPE_POSITION = {
    "array": 1,
    "asarray": 1,
    "empty": 1,
    "zeros": 1,
    "ones": 1,
    "full": 2,
}

_LOCKISH = ("lock", "mutex", "sem", "cond")
_QUEUEISH = ("queue", "_tasks", "_results")
#: receiver names that look like raw sockets/connections; asyncio stream
#: readers/writers are deliberately excluded (their awaitables don't block).
_SOCKISH = ("sock", "conn")
#: socket methods that block the calling thread until the peer acts.
_SOCKET_BLOCKING_METHODS = (
    "recv",
    "recv_into",
    "recvfrom",
    "send",
    "sendall",
    "accept",
    "connect",
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _receiver_name(node: ast.AST) -> str | None:
    """Last identifier of a call receiver: ``self._ingest_queue.put`` → ``_ingest_queue``."""
    if isinstance(node, ast.Attribute):
        value = node.value
        if isinstance(value, ast.Attribute):
            return value.attr
        if isinstance(value, ast.Name):
            return value.id
    return None


def _name_contains(name: str | None, needles: tuple[str, ...]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return any(needle in lowered for needle in needles)


def _blocking_reason(call: ast.Call) -> str | None:
    """Why ``call`` would block a thread, or ``None`` if it would not."""
    func = call.func
    qualified = dotted_name(func)
    if qualified is not None:
        if qualified == "time.sleep" or qualified.endswith(".time.sleep"):
            return "time.sleep blocks the calling thread"
        if qualified in ("open", "subprocess.run", "subprocess.check_output"):
            return f"{qualified}() performs blocking I/O"
        if qualified == "socket.create_connection" or qualified.endswith(
            ".socket.create_connection"
        ):
            return "socket.create_connection() blocks until connected"
    if isinstance(func, ast.Attribute):
        attr = func.attr
        receiver = _receiver_name(func)
        if attr == "acquire" and _name_contains(receiver, _LOCKISH):
            return f"{receiver}.acquire() can block"
        if attr in _SOCKET_BLOCKING_METHODS and _name_contains(receiver, _SOCKISH):
            return f"{receiver}.{attr}() blocks on socket I/O"
        if attr in ("get", "put", "join") and _name_contains(receiver, _QUEUEISH):
            for keyword in call.keywords:
                if (
                    keyword.arg == "block"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    return None
            return f"{receiver}.{attr}() can block on queue backpressure"
    return None


def _is_in_executor_wrapper(ctx: FileContext, node: ast.AST) -> bool:
    """Whether ``node`` sits inside an ``asyncio.to_thread``/executor submission."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.Call):
            qualified = dotted_name(ancestor.func)
            if qualified is not None and (
                qualified.endswith("to_thread") or qualified.endswith("run_in_executor")
            ):
                return True
    return False


class OneShotPairwiseRule:
    """RPR001 — full pairwise matrices must be built by ``packed_pairwise``.

    ``kernel.many_to_many(x, x)`` materializes an O(n·d) broadcast temp per
    row block *and* an O(n²) output in one shot; ``packed_pairwise`` chunks
    rows to a ~16 MB temp budget.  Any self-pairwise call outside that
    function is a regression waiting for a large window.
    """

    rule_id = "RPR001"
    title = "one-shot many_to_many(x, x) outside packed_pairwise"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else dotted_name(func)
            if name != "many_to_many" or len(node.args) < 2:
                continue
            if ast.dump(node.args[0]) != ast.dump(node.args[1]):
                continue
            enclosing = ctx.enclosing(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            if (
                isinstance(enclosing, (ast.FunctionDef, ast.AsyncFunctionDef))
                and enclosing.name == "packed_pairwise"
            ):
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                "one-shot self-pairwise many_to_many(x, x); "
                "use packed_pairwise() to keep the broadcast temp row-chunked",
            )


class DtypeRequiredRule:
    """RPR002 — kernel modules must thread an explicit dtype.

    ``repro.core``/``repro.sequential`` honour the ``use_dtype`` context;
    a dtype-less ``np.asarray``/``np.zeros`` silently promotes float32
    pipelines back to float64 and desynchronizes kernel output dtypes.
    """

    rule_id = "RPR002"
    title = "dtype-less array constructor in a kernel module"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.core", "repro.sequential"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not isinstance(func.value, ast.Name):
                continue
            if func.value.id not in ("np", "numpy"):
                continue
            position = _DTYPE_POSITION.get(func.attr)
            if position is None:
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            if len(node.args) > position:
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                f"np.{func.attr}() without an explicit dtype in a kernel module; "
                "thread the resolved dtype so float32 mode stays float32",
            )


class AsyncBlockingRule:
    """RPR003 — ``async def`` bodies must not call blocking primitives.

    A blocking call inside a coroutine stalls the whole event loop; wrap it
    in ``asyncio.to_thread``/``run_in_executor`` or use the native awaitable
    (e.g. an ``asyncio.Condition``) instead.
    """

    rule_id = "RPR003"
    title = "blocking call inside an async def body"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = _blocking_reason(node)
            if reason is None:
                continue
            owner = ctx.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if not isinstance(owner, ast.AsyncFunctionDef):
                continue
            if _is_in_executor_wrapper(ctx, node):
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                f"{reason} inside async def {owner.name}(); "
                "wrap in asyncio.to_thread()/an executor or use an awaitable",
            )


class LockBlockingRule:
    """RPR004 — serving locks must not be held across blocking calls.

    A shard lock held over a queue op or a sleep serializes every other
    stream routed to that shard behind one slow caller — exactly the stall
    the serving layer's drain/flush protocol is designed to avoid.
    """

    rule_id = "RPR004"
    title = "blocking call under a held lock in repro.serving"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.serving"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(
                self._is_lock_context(item.context_expr) for item in node.items
            ):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                reason = _blocking_reason(inner)
                if reason is None:
                    continue
                yield ctx.finding(
                    self.rule_id,
                    inner,
                    f"{reason} while a lock acquired at line {node.lineno} is held; "
                    "move the blocking call outside the critical section",
                )

    @staticmethod
    def _is_lock_context(expr: ast.AST) -> bool:
        name = dotted_name(expr)
        if name is None and isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
        if name is None:
            return False
        return _name_contains(name.rsplit(".", 1)[-1], _LOCKISH)


class SlotsPickleRule:
    """RPR005 — ``__slots__`` classes shipping through process shards must pickle.

    ``ProcessShardWorker`` round-trips window state over multiprocessing
    queues; a slot holding a lock/thread/queue/condition makes the default
    reduce explode at runtime unless the class defines ``__getstate__`` and
    ``__setstate__`` to drop or rebuild it.
    """

    rule_id = "RPR005"
    title = "__slots__ class with unpicklable slots lacks getstate/setstate"

    _UNPICKLABLE = ("lock", "thread", "process", "queue", "cond", "event", "socket")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.core", "repro.serving"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            slots = self._literal_slots(node)
            if slots is None:
                continue
            risky = [
                name for name in slots if _name_contains(name, self._UNPICKLABLE)
            ]
            if not risky:
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "__getstate__" in methods and "__setstate__" in methods:
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                f"class {node.name} slots {risky} look unpicklable but the class "
                "defines no __getstate__/__setstate__ pair; process shards "
                "pickle these payloads",
            )

    @staticmethod
    def _literal_slots(node: ast.ClassDef) -> list[str] | None:
        for item in node.body:
            if not isinstance(item, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in item.targets
            ):
                continue
            if isinstance(item.value, (ast.Tuple, ast.List)):
                names = [
                    element.value
                    for element in item.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
                return names
        return None


class SnapshotRoundTripRule:
    """RPR006 — snapshot carriers must round-trip their whole field set.

    Two structural checks: (a) every ``WindowSnapshot(...)`` construction
    must stamp ``version=SNAPSHOT_VERSION`` (the shared constant, not a
    literal — literals silently fork the format); (b) in any class defining
    both ``snapshot_state`` and ``load_state``, the field set written into
    the snapshot must equal the field set read back, so a field added to
    one side cannot silently drop state across a save/restore cycle.
    ``guess`` is exempt from the read side: restore validates it externally
    via ``check_grid_alignment`` instead of assigning it.
    """

    rule_id = "RPR006"
    title = "snapshot carrier does not round-trip its field set"

    _WRITE_ONLY_OK = frozenset({"guess"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_version_stamps(ctx)
        yield from self._check_round_trips(ctx)

    def _check_version_stamps(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.rsplit(".", 1)[-1] != "WindowSnapshot":
                continue
            version = next(
                (kw.value for kw in node.keywords if kw.arg == "version"), None
            )
            if version is None:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "WindowSnapshot(...) without version=SNAPSHOT_VERSION",
                )
            elif not (
                isinstance(version, ast.Name) and version.id == "SNAPSHOT_VERSION"
            ) and not (
                isinstance(version, ast.Attribute)
                and version.attr == "SNAPSHOT_VERSION"
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "WindowSnapshot version must reference SNAPSHOT_VERSION, "
                    "not a literal (literals fork the snapshot format silently)",
                )

    def _check_round_trips(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            snapshot = methods.get("snapshot_state")
            load = methods.get("load_state")
            if snapshot is None or load is None:
                continue
            written = self._written_fields(snapshot)
            if written is None:
                continue
            read = self._read_fields(load)
            if read is None:
                continue
            missing = written - read - self._WRITE_ONLY_OK
            phantom = read - written
            if missing:
                yield ctx.finding(
                    self.rule_id,
                    load,
                    f"{node.name}.load_state never reads snapshot field(s) "
                    f"{sorted(missing)} written by snapshot_state",
                )
            if phantom:
                yield ctx.finding(
                    self.rule_id,
                    load,
                    f"{node.name}.load_state reads field(s) {sorted(phantom)} "
                    "that snapshot_state never writes",
                )

    @staticmethod
    def _written_fields(snapshot: ast.FunctionDef) -> set[str] | None:
        for inner in ast.walk(snapshot):
            if isinstance(inner, ast.Return) and isinstance(inner.value, ast.Call):
                keywords = {
                    kw.arg for kw in inner.value.keywords if kw.arg is not None
                }
                if keywords:
                    return keywords
        return None

    @staticmethod
    def _read_fields(load: ast.FunctionDef) -> set[str] | None:
        args = load.args.args
        if len(args) < 2:
            return None
        snapshot_param = args[1].arg
        read: set[str] = set()
        for inner in ast.walk(load):
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == snapshot_param
            ):
                read.add(inner.attr)
        return read or None


class SwallowedExceptionRule:
    """RPR007 — ``except Exception`` in serving must re-raise, log, or use the error.

    The serving layer's failure contract is "record and surface on the next
    call"; a handler that silently drops an ``Exception`` hides shard
    deaths until a query mysteriously hangs.  A handler passes if it
    re-raises, references the bound exception name, or calls something
    logging-shaped.
    """

    rule_id = "RPR007"
    title = "swallowed except Exception in repro.serving"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.serving"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handler_uses_error(node):
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                "except Exception handler neither re-raises, logs, nor uses "
                "the bound error; serving failures must stay observable",
            )

    @staticmethod
    def _is_broad(annotation: ast.AST | None) -> bool:
        if annotation is None:
            return True
        name = dotted_name(annotation)
        return name in ("Exception", "BaseException")

    @staticmethod
    def _handler_uses_error(node: ast.ExceptHandler) -> bool:
        bound = node.name
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                return True
            if bound and isinstance(inner, ast.Name) and inner.id == bound:
                return True
            if isinstance(inner, ast.Call):
                name = dotted_name(inner.func)
                if name is not None:
                    lowered = name.lower()
                    if (
                        "log" in lowered
                        or lowered.startswith(("warnings.", "traceback."))
                        or lowered == "print"
                    ):
                        return True
        return False


class BenchIdentityColumnsRule:
    """RPR008 — benchmark tables must stay joinable by ``check_trend.py``.

    The trend gate matches rows across runs on its identity-column key set;
    a ``register_table`` call whose column list carries no identity column
    produces rows the gate can never match, so regressions in that table
    are invisible.  The key set is read from the analyzed tree's own
    ``benchmarks/check_trend.py`` when present (so the rule tracks the gate,
    not a stale mirror).
    """

    rule_id = "RPR008"
    title = "register_table columns carry no check_trend identity column"

    def __init__(self) -> None:
        self._key_cache: dict[Path, tuple[tuple[str, ...], tuple[str, ...]]] = {}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "benchmarks" not in ctx.path.parts:
            return
        key_columns, metrics = self._trend_columns(ctx.path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.rsplit(".", 1)[-1] != "register_table":
                continue
            columns = self._literal_columns(node)
            if columns is None:
                continue
            identity = [column for column in columns if column in key_columns]
            if identity:
                continue
            has_metric = any(column in metrics for column in columns)
            detail = (
                "rows with timing metrics but no identity column can never "
                "be matched across runs"
                if has_metric
                else "rows without an identity column can never be matched "
                "across runs"
            )
            yield ctx.finding(
                self.rule_id,
                node,
                f"register_table columns {columns!r} carry no identity column "
                f"known to check_trend.py; {detail}",
            )

    def _trend_columns(
        self, path: Path
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        for ancestor in path.resolve().parents:
            candidate = ancestor / "check_trend.py"
            if ancestor.name == "benchmarks" and candidate.is_file():
                cached = self._key_cache.get(candidate)
                if cached is None:
                    cached = self._parse_trend_file(candidate)
                    self._key_cache[candidate] = cached
                return cached
        return FALLBACK_KEY_COLUMNS, FALLBACK_METRICS

    @staticmethod
    def _parse_trend_file(
        candidate: Path,
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        key_columns: tuple[str, ...] = FALLBACK_KEY_COLUMNS
        metrics: tuple[str, ...] = FALLBACK_METRICS
        try:
            tree = ast.parse(candidate.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return key_columns, metrics
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = {
                target.id for target in node.targets if isinstance(target, ast.Name)
            }
            if "KEY_COLUMNS" in targets and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                key_columns = tuple(
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
            if "METRICS" in targets and isinstance(node.value, ast.Dict):
                metrics = tuple(
                    key.value
                    for key in node.value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                )
        return key_columns, metrics

    @staticmethod
    def _literal_columns(node: ast.Call) -> list[str] | None:
        candidate: ast.AST | None = None
        if len(node.args) >= 3:
            candidate = node.args[2]
        for keyword in node.keywords:
            if keyword.arg == "columns":
                candidate = keyword.value
        if not isinstance(candidate, (ast.List, ast.Tuple)):
            return None
        columns = [
            element.value
            for element in candidate.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]
        return columns if len(columns) == len(candidate.elts) else None


#: Functions that form the per-arrival hot path of the streaming windows.
_UPDATE_ENTRYPOINTS = ("insert", "update", "remove_expired", "remove_time")

#: The batched kernel entry points (``BatchDistanceEngine`` / kernels).
_KERNEL_BATCH_CALLS = ("one_to_many", "many_to_many")

_LOOP_NODES = (
    ast.For,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _loop_between(ctx: FileContext, node: ast.AST, fn: ast.AST) -> bool:
    """Whether a loop sits between ``node`` and its enclosing ``fn``."""
    for ancestor in ctx.ancestors(node):
        if ancestor is fn:
            return False
        if isinstance(ancestor, _LOOP_NODES):
            return True
    return False


class PerArrivalKernelLoopRule:
    """RPR009 — per-arrival update code must not loop kernel calls per guess.

    The fused update path (:mod:`repro.core.fastpath`) exists precisely so
    that one arrival performs *one* batched distance scan shared by the
    whole guess ladder.  A ``one_to_many``/``many_to_many`` call inside a
    loop in a per-arrival entry point (``insert``/``update``/expiry or an
    ``_apply_*`` step) re-introduces per-guess kernel dispatch — measured
    at roughly ``num_guesses×`` the fused cost — and silently bypasses both
    the triangle-inequality ladder pruning and the native C path.  Batched
    per-arrival loops belong in ``repro.core.fastpath``, where the path
    updaters are benchmarked and differentially tested; anything else needs
    an explicit allow.
    """

    rule_id = "RPR009"
    title = "kernel-call loop in per-arrival update code outside fastpath"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if Path(ctx.path).name == "fastpath.py":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else dotted_name(func)
            if name not in _KERNEL_BATCH_CALLS:
                continue
            enclosing = ctx.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if enclosing is None:
                continue
            if not (
                enclosing.name in _UPDATE_ENTRYPOINTS
                or enclosing.name.startswith("_apply_")
            ):
                continue
            if not _loop_between(ctx, node, enclosing):
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                f"{name}() inside a loop in per-arrival update code; "
                "route the per-guess scan through repro.core.fastpath so the "
                "whole ladder shares one batched kernel call",
            )


#: Characters in an ``open()`` mode string that imply a write.
_WRITE_MODE_CHARS = frozenset("wax+")


class CheckpointWriteRule:
    """RPR010 — serving persistence must go through ``repro.serving.store``.

    The store centralizes the atomic-write discipline: bytes land in a
    ``*.tmp`` sibling, are flushed and fsynced, and only then ``os.replace``d
    into place, with the manifest written last so a crash can never leave a
    half checkpoint that looks complete.  A direct ``open(..., "wb")`` /
    ``Path.write_bytes`` elsewhere in the serving layer bypasses all of
    that — the exact bug class this rule pins shut.
    """

    rule_id = "RPR010"
    title = "direct file write in repro.serving outside the state store"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.serving"):
            return
        if Path(ctx.path).name == "store.py":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            description = self._write_description(node)
            if description is None:
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                f"{description} in repro.serving outside repro.serving.store; "
                "route persistence through a StateStore so every checkpoint "
                "write stays atomic (tmp + fsync + os.replace)",
            )

    def _write_description(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._mode_argument(call, 1)
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            mode = self._mode_argument(call, 0)
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_bytes",
            "write_text",
        ):
            return f"{func.attr}()"
        else:
            return None
        if mode is not None and _WRITE_MODE_CHARS.intersection(mode):
            return f"open(..., {mode!r})"
        return None

    @staticmethod
    def _mode_argument(call: ast.Call, position: int) -> str | None:
        candidate: ast.AST | None = None
        if len(call.args) > position:
            candidate = call.args[position]
        for keyword in call.keywords:
            if keyword.arg == "mode":
                candidate = keyword.value
        if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
            return candidate.value
        return None


class PolicyCallLoopRule:
    """RPR011 — per-arrival update code must hoist policy decisions out of loops.

    A :class:`~repro.core.window_policy.WindowPolicy` is consulted exactly
    once per arrival: the updaters hoist ``window.expiry_horizon(item.t)``
    above the guess-ladder loop so every guess expires against the *same*
    horizon.  A policy call inside the loop would (a) multiply the pure-Python
    policy dispatch by ``num_guesses×`` on the hot path and (b) let a policy
    whose answer shifts mid-arrival (an event-time ledger advancing, a session
    closing) hand different horizons to different guesses, silently breaking
    the prefix-contiguous expiry the coreset invariants rely on.  The policy
    module itself is the one legitimate home for such loops (it *is* the
    decision point), so it is exempt, mirroring RPR009's fastpath carve-out.
    """

    rule_id = "RPR011"
    title = "window-policy call inside a loop in per-arrival update code"

    #: Method names that constitute a policy decision wherever they appear.
    _DECISION_CALLS = ("expiry_horizon",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.core"):
            return
        if Path(ctx.path).name == "window_policy.py":
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in self._DECISION_CALLS:
                described = f"{func.attr}()"
            elif _receiver_name(func) == "_policy":
                described = f"_policy.{func.attr}()"
            else:
                continue
            enclosing = ctx.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if enclosing is None:
                continue
            if not (
                enclosing.name in _UPDATE_ENTRYPOINTS
                or enclosing.name.startswith(("_apply_", "_insert_", "_ingest_"))
            ):
                continue
            if not _loop_between(ctx, node, enclosing):
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                f"{described} inside a loop in per-arrival update code; "
                "consult the window policy once per arrival and hoist the "
                "horizon above the guess-ladder loop",
            )


def ALL_RULES_FACTORY() -> list:
    """Fresh rule instances (RPR008 carries a per-run parse cache)."""
    return [
        OneShotPairwiseRule(),
        DtypeRequiredRule(),
        AsyncBlockingRule(),
        LockBlockingRule(),
        SlotsPickleRule(),
        SnapshotRoundTripRule(),
        SwallowedExceptionRule(),
        BenchIdentityColumnsRule(),
        PerArrivalKernelLoopRule(),
        CheckpointWriteRule(),
        PolicyCallLoopRule(),
    ]


ALL_RULES = ALL_RULES_FACTORY()


def rules_by_id() -> dict[str, object]:
    """Mapping of rule id → rule instance for ``--select`` validation."""
    return {rule.rule_id: rule for rule in ALL_RULES}
