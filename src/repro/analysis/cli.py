"""Command-line front-end for the analysis engine.

Wired into the main ``repro-experiments`` parser as the ``analyze``
subcommand; also runnable standalone via ``python -m repro.analysis.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence, TextIO

from .framework import EXIT_USAGE, Report, analyze_paths
from .rules import ALL_RULES_FACTORY, rules_by_id


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``analyze`` options to ``parser`` (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to analyze (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _parse_select(raw: list[str] | None) -> list[str] | None:
    if raw is None:
        return None
    selected: list[str] = []
    for chunk in raw:
        selected.extend(token.strip() for token in chunk.split(",") if token.strip())
    return selected


def _render_human(report: Report, stream: TextIO) -> None:
    for finding in report.findings:
        print(finding.render(), file=stream)
    noun = "finding" if len(report.findings) == 1 else "findings"
    print(
        f"{len(report.findings)} {noun} "
        f"({report.suppressed} suppressed) in {report.files_scanned} files",
        file=stream,
    )


def run_analyze(args: argparse.Namespace, *, stream: TextIO | None = None) -> int:
    """Execute the ``analyze`` subcommand; returns the process exit code."""
    out = stream if stream is not None else sys.stdout
    rules = ALL_RULES_FACTORY()
    catalogue = {rule.rule_id: rule for rule in rules}
    if args.list_rules:
        for rule_id in sorted(catalogue):
            print(f"{rule_id}  {catalogue[rule_id].title}", file=out)
        return 0
    select = _parse_select(args.select)
    if select is not None:
        unknown = sorted(set(select) - set(catalogue))
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(rules_by_id()))})",
                file=sys.stderr,
            )
            return EXIT_USAGE
    if not args.paths:
        print("error: no paths to analyze", file=sys.stderr)
        return EXIT_USAGE
    report = analyze_paths(args.paths, rules, select=select)
    if args.format == "json":
        json.dump(report.to_json(), out, indent=2, sort_keys=True)
        print(file=out)
    else:
        _render_human(report, out)
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Run the repo-specific AST invariant checks.",
    )
    add_analyze_arguments(parser)
    return run_analyze(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
