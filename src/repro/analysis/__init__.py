"""Repo-specific static analysis: AST rules for the tree's load-bearing invariants.

The reproduction accumulated a set of invariants that used to live only in
prose (ROADMAP/CHANGES review notes): pairwise distance matrices must stay
row-chunked, kernel paths must thread an explicit dtype, serving locks must
not be held across blocking calls, async paths must not block the event
loop, snapshot carriers must round-trip their whole field set, and
benchmark tables must stay joinable by ``check_trend.py``.  This package
turns each of those review findings into a machine-checked rule.

Entry points:

* ``repro-experiments analyze [paths...]`` — CLI (see :mod:`repro.analysis.cli`).
* :func:`analyze_paths` — importable engine used by ``tests/test_analysis.py``.
* :data:`ALL_RULES` — the rule battery, each a :class:`Rule` implementation.

Findings are suppressible inline with a justified comment::

    kernel.many_to_many(coords, coords)  # repro: allow[RPR001] parity oracle

The comment may sit on the offending line or on the line directly above it.
"""

from __future__ import annotations

from .framework import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    FileContext,
    Finding,
    Report,
    Rule,
    analyze_paths,
    iter_python_files,
)
from .rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "FileContext",
    "Finding",
    "Report",
    "Rule",
    "analyze_paths",
    "iter_python_files",
    "rules_by_id",
]
