"""Experiment drivers, one module per figure of the paper plus ablations."""

from . import (
    ablation_beta,
    ablation_solver,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
)
from .common import ExperimentScale, build_constraint, get_scale, make_contenders
from .delta_sweep import run_delta_sweep

__all__ = [
    "ExperimentScale",
    "ablation_beta",
    "ablation_solver",
    "build_constraint",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "get_scale",
    "make_contenders",
    "run_delta_sweep",
]
