"""Ablation E9 — sensitivity to the guess-grid progression parameter β.

The paper fixes β = 2 for all experiments after observing that "varying this
parameter does not significantly influence the results".  This ablation
validates that claim in the reproduction: for β ∈ {0.5, 1, 2, 4} the
approximation ratio should stay essentially constant, while memory shrinks
slightly as β grows (fewer guesses in the grid).
"""

from __future__ import annotations

from typing import Sequence

from ..datasets.registry import load_dataset
from ..evaluation.reporting import format_table
from ..evaluation.runner import run_experiment
from .common import ExperimentScale, get_scale, make_contenders

DEFAULT_BETAS = (0.5, 1.0, 2.0, 4.0)


def run(
    dataset: str = "phones",
    *,
    scale: ExperimentScale | None = None,
    betas: Sequence[float] = DEFAULT_BETAS,
    delta: float = 1.0,
    seed: int = 0,
) -> list[dict]:
    """One row per (β, algorithm) with quality and cost indicators."""
    scale = scale if scale is not None else get_scale()
    points = load_dataset(dataset, scale.stream_length, seed=seed)

    rows: list[dict] = []
    for beta in betas:
        bundle = make_contenders(
            points,
            window_size=scale.window_size,
            delta=delta,
            beta=beta,
            include_chen=False,
        )
        result = run_experiment(
            points,
            bundle.contenders,
            window_size=scale.window_size,
            constraint=bundle.constraint,
            num_queries=scale.num_queries,
        )
        for name, row in result.summaries().items():
            rows.append({"ablation": "beta", "dataset": dataset, "beta": beta, **row})
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    rows = run()
    print(
        format_table(
            rows,
            [
                "dataset",
                "beta",
                "algorithm",
                "approx_ratio",
                "memory_points",
                "query_ms",
            ],
            title="Ablation: sensitivity to the guess progression beta",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
