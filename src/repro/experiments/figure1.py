"""Figure 1 — approximation ratio (top) and memory (bottom) for varying δ.

The paper fixes the window size to 10 000 points and sweeps
δ ∈ {0.5, 1, ..., 4} on PHONES, HIGGS and COVTYPE; the streaming algorithms
are compared against the sequential baselines run on the whole window.
Expected shape: at δ = 4 the streaming algorithms are within a factor ≈ 2 of
the baselines; for small δ they match them (and occasionally beat them),
while using a fraction of the window's memory.
"""

from __future__ import annotations

from typing import Sequence

from ..datasets.registry import PAPER_DATASETS
from ..evaluation.reporting import format_table
from .common import ExperimentScale, get_scale
from .delta_sweep import figure1_rows, run_delta_sweep


def run(
    datasets: Sequence[str] = PAPER_DATASETS,
    *,
    scale: ExperimentScale | None = None,
    seed: int = 0,
) -> list[dict]:
    """Regenerate the Figure 1 series; returns one row per (dataset, δ, algorithm)."""
    scale = scale if scale is not None else get_scale()
    sweep = run_delta_sweep(datasets, scale=scale, seed=seed)
    return figure1_rows(sweep)


def main() -> None:  # pragma: no cover - CLI entry point
    rows = run()
    print(
        format_table(
            rows,
            ["dataset", "delta", "algorithm", "approx_ratio", "memory_points"],
            title="Figure 1: approximation ratio and memory vs delta",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
