"""Figure 3 — memory (top) and query time (bottom) at varying window sizes.

The paper fixes δ = 0.5 (the most accurate, most expensive setting) and grows
the window from 10 000 to 500 000 points.  Expected shape: the memory and the
query time of the sequential baselines grow linearly with the window (ChenEtAl
times out first, then Jones), while both versions of the streaming algorithm
stabilise to a window-size-independent plateau.

This reproduction sweeps a geometric range of window sizes appropriate to the
selected :class:`~repro.experiments.common.ExperimentScale`; the shapes
(linear baselines vs. flat streaming algorithms) are what EXPERIMENTS.md
compares against the paper.
"""

from __future__ import annotations

from typing import Sequence

from ..datasets.registry import load_dataset
from ..evaluation.reporting import format_table
from ..evaluation.runner import run_experiment
from .common import ExperimentScale, get_scale, make_contenders


def run(
    dataset: str = "phones",
    *,
    scale: ExperimentScale | None = None,
    window_sizes: Sequence[int] | None = None,
    delta: float = 0.5,
    seed: int = 0,
) -> list[dict]:
    """Regenerate the Figure 3 series; one row per (window size, algorithm)."""
    scale = scale if scale is not None else get_scale()
    window_sizes = (
        tuple(window_sizes) if window_sizes is not None else scale.window_sizes
    )

    rows: list[dict] = []
    for window_size in window_sizes:
        stream_length = int(window_size * 2.5)
        points = load_dataset(dataset, stream_length, seed=seed)
        # ChenEtAl becomes prohibitively slow on large windows (the paper's
        # runs time out beyond 30k); skip it past the second window size so
        # the sweep stays laptop-friendly, mirroring the published figure.
        include_chen = scale.include_chen and window_size <= scale.window_sizes[
            min(1, len(scale.window_sizes) - 1)
        ]
        bundle = make_contenders(
            points,
            window_size=window_size,
            delta=delta,
            include_chen=include_chen,
        )
        result = run_experiment(
            points,
            bundle.contenders,
            window_size=window_size,
            constraint=bundle.constraint,
            num_queries=scale.num_queries,
        )
        for name, row in result.summaries().items():
            rows.append(
                {
                    "figure": "3",
                    "dataset": dataset,
                    "window_size": window_size,
                    "delta": delta,
                    **row,
                }
            )
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    rows = run()
    print(
        format_table(
            rows,
            [
                "dataset",
                "window_size",
                "algorithm",
                "memory_points",
                "query_ms",
                "approx_ratio",
            ],
            title="Figure 3: memory and query time vs window size (delta=0.5)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
