"""Figure 2 — update time (top) and query time (bottom) for varying δ.

Same runs as Figure 1, different indicators.  Expected shape: the baselines
have next-to-zero update time (they only buffer the window) but query times
orders of magnitude above the streaming algorithms; ChenEtAl is in turn
orders of magnitude slower than Jones.  Larger δ (smaller coresets) makes
both the update and the query of the streaming algorithms faster.
"""

from __future__ import annotations

from typing import Sequence

from ..datasets.registry import PAPER_DATASETS
from ..evaluation.reporting import format_table
from .common import ExperimentScale, get_scale
from .delta_sweep import figure2_rows, run_delta_sweep


def run(
    datasets: Sequence[str] = PAPER_DATASETS,
    *,
    scale: ExperimentScale | None = None,
    seed: int = 0,
) -> list[dict]:
    """Regenerate the Figure 2 series; returns one row per (dataset, δ, algorithm)."""
    scale = scale if scale is not None else get_scale()
    sweep = run_delta_sweep(datasets, scale=scale, seed=seed)
    return figure2_rows(sweep)


def main() -> None:  # pragma: no cover - CLI entry point
    rows = run()
    print(
        format_table(
            rows,
            ["dataset", "delta", "algorithm", "update_ms", "query_ms"],
            title="Figure 2: update and query time (ms) vs delta",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
