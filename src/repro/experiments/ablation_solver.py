"""Ablation E10 — choice of the sequential solver ``A`` inside ``Query()``.

Theorem 1 is parameterised by the approximation factor α of the sequential
solver run on the coreset; the paper instantiates A with the Jones et al.
algorithm (α = 3).  This ablation swaps A for the Chen et al. matroid-center
algorithm and for the capacity-aware greedy heuristic, measuring the effect
on quality and query time.  Expected outcome: Chen et al. yields the same or
slightly better radii at a much higher query cost; the greedy heuristic is
fastest but can degrade on adversarially unbalanced windows.
"""

from __future__ import annotations

from ..core.config import SlidingWindowConfig
from ..core.fair_sliding_window import FairSlidingWindow
from ..datasets.registry import load_dataset
from ..evaluation.reporting import format_table
from ..evaluation.runner import Contender, run_experiment
from ..sequential.chen import ChenMatroidCenter
from ..sequential.jones import JonesFairCenter
from ..sequential.kleindessner import CapacityAwareGreedy
from ..streaming.baseline_window import SlidingWindowBaseline
from .common import (
    ExperimentScale,
    build_constraint,
    estimate_distance_bounds,
    get_scale,
)


def run(
    dataset: str = "phones",
    *,
    scale: ExperimentScale | None = None,
    delta: float = 1.0,
    seed: int = 0,
) -> list[dict]:
    """One row per coreset solver with quality and cost indicators."""
    scale = scale if scale is not None else get_scale()
    points = load_dataset(dataset, scale.stream_length, seed=seed)
    constraint = build_constraint(points)
    dmin, dmax = estimate_distance_bounds(points)

    def config() -> SlidingWindowConfig:
        return SlidingWindowConfig(
            window_size=scale.window_size,
            constraint=constraint,
            delta=delta,
            beta=2.0,
            dmin=dmin,
            dmax=dmax,
        )

    contenders = [
        Contender(
            "Ours[A=Jones]", FairSlidingWindow(config(), solver=JonesFairCenter())
        ),
        Contender(
            "Ours[A=ChenEtAl]", FairSlidingWindow(config(), solver=ChenMatroidCenter())
        ),
        Contender(
            "Ours[A=Greedy]", FairSlidingWindow(config(), solver=CapacityAwareGreedy())
        ),
        Contender(
            "Jones",
            SlidingWindowBaseline(
                scale.window_size, constraint, JonesFairCenter(), name="Jones"
            ),
            is_reference=True,
        ),
    ]
    result = run_experiment(
        points,
        contenders,
        window_size=scale.window_size,
        constraint=constraint,
        num_queries=scale.num_queries,
    )
    rows = []
    for name, row in result.summaries().items():
        rows.append({"ablation": "solver", "dataset": dataset, "delta": delta, **row})
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    rows = run()
    print(
        format_table(
            rows,
            ["dataset", "algorithm", "approx_ratio", "query_ms", "coreset_size"],
            title="Ablation: sequential solver A used on the coreset",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
