"""Shared plumbing of the experiment drivers.

Every figure of the paper's evaluation section has a driver module in this
package.  They all share the same building blocks, provided here:

* :class:`ExperimentScale` — the knobs that differ between a quick laptop run
  and a full reproduction (window size, stream length, number of queried
  windows, the δ sweep).  The scale is selected through the ``REPRO_SCALE``
  environment variable (``tiny`` / ``small`` / ``full``), defaulting to
  ``small`` so that the whole benchmark suite completes in minutes.
* :func:`build_constraint` — the paper's capacity rule: ``sum k_i = 14`` with
  ``k_i`` proportional to the color frequencies of the dataset.
* :func:`estimate_distance_bounds` — the (dmin, dmax) bracket handed to the
  distance-aware variant ``Ours`` (the paper assumes these are known for that
  variant; we estimate them from a sample of the stream and widen them by a
  safety factor).
* :func:`make_contenders` — construct the algorithm instances compared in the
  figures: ``Ours``, ``OursOblivious``, ``Jones`` and ``ChenEtAl``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from ..core.config import FairnessConstraint, SlidingWindowConfig
from ..core.fair_sliding_window import FairSlidingWindow
from ..core.geometry import Point, color_histogram
from ..core.metrics import min_max_pairwise_distance
from ..core.oblivious import ObliviousFairSlidingWindow
from ..evaluation.runner import Contender
from ..sequential.chen import ChenMatroidCenter
from ..sequential.jones import JonesFairCenter
from ..streaming.baseline_window import SlidingWindowBaseline

#: Total number of centers used throughout the paper's experiments.
PAPER_TOTAL_CENTERS = 14


@dataclass(frozen=True)
class ExperimentScale:
    """Size parameters of an experiment run."""

    name: str
    window_size: int
    stream_length: int
    num_queries: int
    deltas: tuple[float, ...]
    window_sizes: tuple[int, ...]
    blob_dimensions: tuple[int, ...]
    rotated_dimensions: tuple[int, ...]
    include_chen: bool = True


_SCALES: dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny",
        window_size=150,
        stream_length=400,
        num_queries=4,
        deltas=(1.0, 4.0),
        window_sizes=(100, 200),
        blob_dimensions=(2, 5),
        rotated_dimensions=(3, 9),
        include_chen=True,
    ),
    "small": ExperimentScale(
        name="small",
        window_size=600,
        stream_length=1500,
        num_queries=8,
        deltas=(0.5, 1.0, 2.0, 4.0),
        window_sizes=(200, 400, 800, 1600),
        blob_dimensions=(2, 4, 6, 8, 10),
        rotated_dimensions=(3, 6, 9, 12, 15),
        include_chen=True,
    ),
    "full": ExperimentScale(
        name="full",
        window_size=2000,
        stream_length=5000,
        num_queries=25,
        deltas=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
        window_sizes=(500, 1000, 2000, 4000, 8000),
        blob_dimensions=(2, 3, 4, 5, 6, 7, 8, 9, 10),
        rotated_dimensions=(3, 6, 9, 12, 15),
        include_chen=True,
    ),
}


def current_scale() -> ExperimentScale:
    """The scale selected by the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", "small").lower()
    try:
        return _SCALES[name]
    except KeyError:
        known = ", ".join(sorted(_SCALES))
        raise ValueError(
            f"unknown REPRO_SCALE={name!r}; choose one of {known}"
        ) from None


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by name (``None`` = environment-selected scale)."""
    if name is None:
        return current_scale()
    return _SCALES[name]


def build_constraint(
    points: Sequence[Point], total_centers: int = PAPER_TOTAL_CENTERS
) -> FairnessConstraint:
    """Capacities proportional to the color frequencies, summing to ``total_centers``."""
    histogram = color_histogram(points)
    total = max(total_centers, len(histogram))
    return FairnessConstraint.proportional(histogram, total)


def estimate_distance_bounds(
    points: Sequence[Point],
    *,
    sample_size: int = 400,
    slack: float = 4.0,
) -> tuple[float, float]:
    """Estimate a (dmin, dmax) bracket of the stream's pairwise distances.

    A uniform stride sample keeps the estimation quadratic only in the sample
    size; the bracket is widened by ``slack`` on both ends so that the guess
    grid of ``Ours`` always covers the scales reached within any window.
    """
    points = list(points)
    if len(points) < 2:
        return 1e-6, 1.0
    stride = max(1, len(points) // sample_size)
    sample = points[::stride][:sample_size]
    if len(sample) < 2:
        sample = points[:2]
    dmin, dmax = min_max_pairwise_distance(sample)
    if dmin <= 0:
        dmin = dmax / 1e6 if dmax > 0 else 1e-6
    if dmax <= 0:
        dmax = 1.0
    return dmin / slack, dmax * slack


@dataclass
class ContenderSet:
    """The algorithms compared in an experiment plus their configuration."""

    contenders: list[Contender]
    constraint: FairnessConstraint
    dmin: float
    dmax: float
    config: SlidingWindowConfig = field(
        repr=False, default=None
    )  # type: ignore[assignment]


def make_contenders(
    points: Sequence[Point],
    *,
    window_size: int,
    delta: float,
    beta: float = 2.0,
    include_ours: bool = True,
    include_oblivious: bool = True,
    include_jones: bool = True,
    include_chen: bool = True,
    total_centers: int = PAPER_TOTAL_CENTERS,
    solver=None,
) -> ContenderSet:
    """Build the standard set of contenders for a stream.

    ``Ours`` and ``OursOblivious`` are the paper's algorithms (the former
    knows the distance bounds, the latter estimates them); ``Jones`` and
    ``ChenEtAl`` are the sequential baselines run on the full exact window.
    """
    constraint = build_constraint(points, total_centers)
    dmin, dmax = estimate_distance_bounds(points)
    config = SlidingWindowConfig(
        window_size=window_size,
        constraint=constraint,
        delta=delta,
        beta=beta,
        dmin=dmin,
        dmax=dmax,
    )
    solver = solver if solver is not None else JonesFairCenter()

    contenders: list[Contender] = []
    if include_ours:
        contenders.append(
            Contender("Ours", FairSlidingWindow(config, solver=solver))
        )
    if include_oblivious:
        contenders.append(
            Contender(
                "OursOblivious", ObliviousFairSlidingWindow(config, solver=solver)
            )
        )
    if include_jones:
        contenders.append(
            Contender(
                "Jones",
                SlidingWindowBaseline(
                    window_size, constraint, JonesFairCenter(), name="Jones"
                ),
                is_reference=True,
            )
        )
    if include_chen:
        contenders.append(
            Contender(
                "ChenEtAl",
                SlidingWindowBaseline(
                    window_size, constraint, ChenMatroidCenter(), name="ChenEtAl"
                ),
                is_reference=True,
            )
        )
    return ContenderSet(
        contenders=contenders,
        constraint=constraint,
        dmin=dmin,
        dmax=dmax,
        config=config,
    )
