"""Figure 4 — query time (left) and memory (right) vs. dimensionality (blobs).

The paper generates mixtures of 21 Gaussians in d dimensions (2 <= d <= 10),
7 colors with k_i = 3, window 10 000, and runs Ours with δ ∈ {0.5, 2}
against the Jones baseline.  Expected shape: the baseline is insensitive to
the dimensionality, while the query time and memory of the streaming
algorithm grow with d — steeply for δ = 0.5, mildly for δ = 2 (which still
uses less memory than the baseline).
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import FairnessConstraint
from ..core.fair_sliding_window import FairSlidingWindow
from ..core.config import SlidingWindowConfig
from ..datasets.synthetic import blobs
from ..evaluation.reporting import format_table
from ..evaluation.runner import Contender, run_experiment
from ..sequential.jones import JonesFairCenter
from ..streaming.baseline_window import SlidingWindowBaseline
from .common import ExperimentScale, estimate_distance_bounds, get_scale

#: per-color capacity used by the paper for the blobs experiments.
PER_COLOR_CAPACITY = 3
NUM_COLORS = 7


def run(
    *,
    scale: ExperimentScale | None = None,
    dimensions: Sequence[int] | None = None,
    deltas: Sequence[float] = (0.5, 2.0),
    seed: int = 0,
) -> list[dict]:
    """Regenerate the Figure 4 series; one row per (dimension, algorithm, δ)."""
    scale = scale if scale is not None else get_scale()
    dimensions = tuple(dimensions) if dimensions is not None else scale.blob_dimensions
    constraint = FairnessConstraint.uniform(list(range(NUM_COLORS)), PER_COLOR_CAPACITY)

    rows: list[dict] = []
    for dim in dimensions:
        points = blobs(
            scale.stream_length, dim, num_colors=NUM_COLORS, seed=seed
        )
        dmin, dmax = estimate_distance_bounds(points)
        contenders: list[Contender] = [
            Contender(
                "Jones",
                SlidingWindowBaseline(
                    scale.window_size, constraint, JonesFairCenter(), name="Jones"
                ),
                is_reference=True,
            )
        ]
        for delta in deltas:
            config = SlidingWindowConfig(
                window_size=scale.window_size,
                constraint=constraint,
                delta=delta,
                beta=2.0,
                dmin=dmin,
                dmax=dmax,
            )
            contenders.append(
                Contender(f"Ours(delta={delta})", FairSlidingWindow(config))
            )
        result = run_experiment(
            points,
            contenders,
            window_size=scale.window_size,
            constraint=constraint,
            num_queries=scale.num_queries,
        )
        for name, row in result.summaries().items():
            rows.append({"figure": "4", "dimension": dim, **row})
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    rows = run()
    print(
        format_table(
            rows,
            ["dimension", "algorithm", "query_ms", "memory_points", "approx_ratio"],
            title="Figure 4: query time and memory vs dimensionality (blobs)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
