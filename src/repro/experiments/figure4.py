"""Figure 4 — query time (left) and memory (right) vs. dimensionality (blobs).

The paper generates mixtures of 21 Gaussians in d dimensions (2 <= d <= 10),
7 colors with k_i = 3, window 10 000, and runs Ours with δ ∈ {0.5, 2}
against the Jones baseline.  Expected shape: the baseline is insensitive to
the dimensionality, while the query time and memory of the streaming
algorithm grow with d — steeply for δ = 0.5, mildly for δ = 2 (which still
uses less memory than the baseline).

:func:`run_cell` regenerates the series at a *single* dimensionality — the
unit the :mod:`repro.bench` sweep runner schedules across its
figure × dimension × backend × dtype grid; :func:`run` is the plain
all-dimensions driver used by the ``figure4`` CLI sub-command.
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import FairnessConstraint, SlidingWindowConfig
from ..core.fair_sliding_window import FairSlidingWindow
from ..datasets.synthetic import blobs
from ..evaluation.reporting import format_table
from ..evaluation.runner import Contender, run_experiment
from ..sequential.jones import JonesFairCenter
from ..streaming.baseline_window import SlidingWindowBaseline
from .common import ExperimentScale, estimate_distance_bounds, get_scale

#: per-color capacity used by the paper for the blobs experiments.
PER_COLOR_CAPACITY = 3
NUM_COLORS = 7


def run_cell(
    dimension: int,
    *,
    scale: ExperimentScale | None = None,
    deltas: Sequence[float] = (0.5, 2.0),
    seed: int = 0,
) -> list[dict]:
    """The Figure 4 series at one dimensionality; one row per (algorithm, δ).

    One call is one *sweep cell*: the blobs stream is generated, converted
    once into the run's shared coordinate arena, and every contender (the
    Jones baseline plus ``Ours`` at each δ) is driven over it.
    """
    scale = scale if scale is not None else get_scale()
    constraint = FairnessConstraint.uniform(list(range(NUM_COLORS)), PER_COLOR_CAPACITY)
    points = blobs(scale.stream_length, dimension, num_colors=NUM_COLORS, seed=seed)
    dmin, dmax = estimate_distance_bounds(points)
    contenders: list[Contender] = [
        Contender(
            "Jones",
            SlidingWindowBaseline(
                scale.window_size, constraint, JonesFairCenter(), name="Jones"
            ),
            is_reference=True,
        )
    ]
    for delta in deltas:
        config = SlidingWindowConfig(
            window_size=scale.window_size,
            constraint=constraint,
            delta=delta,
            beta=2.0,
            dmin=dmin,
            dmax=dmax,
        )
        contenders.append(Contender(f"Ours(delta={delta})", FairSlidingWindow(config)))
    result = run_experiment(
        points,
        contenders,
        window_size=scale.window_size,
        constraint=constraint,
        num_queries=scale.num_queries,
    )
    return [
        {
            "figure": "4",
            "dataset": f"blobs-{dimension}d",
            "dimension": dimension,
            **row,
        }
        for row in result.summaries().values()
    ]


def run(
    *,
    scale: ExperimentScale | None = None,
    dimensions: Sequence[int] | None = None,
    deltas: Sequence[float] = (0.5, 2.0),
    seed: int = 0,
) -> list[dict]:
    """Regenerate the Figure 4 series; one row per (dimension, algorithm, δ)."""
    scale = scale if scale is not None else get_scale()
    dimensions = tuple(dimensions) if dimensions is not None else scale.blob_dimensions
    rows: list[dict] = []
    for dim in dimensions:
        rows.extend(run_cell(dim, scale=scale, deltas=deltas, seed=seed))
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    rows = run()
    print(
        format_table(
            rows,
            ["dimension", "algorithm", "query_ms", "memory_points", "approx_ratio"],
            title="Figure 4: query time and memory vs dimensionality (blobs)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
