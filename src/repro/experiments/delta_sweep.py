"""Shared driver for the δ sweep of Figures 1 and 2.

The paper's Figures 1 and 2 come from the same runs: for every dataset and
every value of the precision parameter δ, the four algorithms (Ours,
OursOblivious, Jones, ChenEtAl) process the stream and are queried on a set
of consecutive windows.  Figure 1 plots the approximation ratio and the
memory, Figure 2 the update and query times.  :func:`run_delta_sweep`
produces one row per (dataset, δ, algorithm) carrying all four indicators, so
both figures can be regenerated from a single sweep.
"""

from __future__ import annotations

from typing import Sequence

from ..datasets.registry import load_dataset
from ..evaluation.runner import run_experiment
from .common import ExperimentScale, get_scale, make_contenders


def run_delta_sweep(
    datasets: Sequence[str],
    *,
    scale: ExperimentScale | None = None,
    deltas: Sequence[float] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Run the δ sweep and return one aggregated row per (dataset, δ, algorithm).

    The sequential baselines do not depend on δ; they are run once per dataset
    and their rows are replicated across δ values (mirroring the flat lines of
    the paper's figures).
    """
    scale = scale if scale is not None else get_scale()
    deltas = tuple(deltas) if deltas is not None else scale.deltas

    rows: list[dict] = []
    for dataset in datasets:
        points = load_dataset(dataset, scale.stream_length, seed=seed)
        baseline_rows: dict[str, dict] | None = None
        for delta in deltas:
            include_baselines = baseline_rows is None
            bundle = make_contenders(
                points,
                window_size=scale.window_size,
                delta=delta,
                include_jones=True,
                include_chen=scale.include_chen,
            )
            contenders = bundle.contenders
            if not include_baselines:
                contenders = [
                    c for c in contenders if c.name in ("Ours", "OursOblivious")
                ]
                # Reuse the reference radii computed at the first δ by marking
                # no contender as reference and patching ratios afterwards.
            result = run_experiment(
                points,
                contenders,
                window_size=scale.window_size,
                constraint=bundle.constraint,
                num_queries=scale.num_queries,
            )
            summaries = result.summaries()
            if include_baselines:
                baseline_rows = {
                    name: row
                    for name, row in summaries.items()
                    if name in ("Jones", "ChenEtAl")
                }
            else:
                # Recompute the approximation ratio of the streaming
                # algorithms against the stored baseline radii.
                reference = min(
                    row["radius"] for row in (baseline_rows or {}).values()
                ) if baseline_rows else None
                for name, row in summaries.items():
                    if reference and reference > 0:
                        row["approx_ratio"] = row["radius"] / reference
                if baseline_rows:
                    summaries.update(baseline_rows)

            # Stamp update-path diagnostics (resolved backend path and the
            # guess-ladder pruning skip rates) onto the streaming rows; the
            # sequential baselines have no incremental update path.
            for contender in contenders:
                row = summaries.get(contender.name)
                algorithm = contender.algorithm
                if row is None or not hasattr(algorithm, "update_stats"):
                    continue
                stats = algorithm.update_stats()
                row["update_path"] = algorithm.update_path
                row["v_prune_rate"] = round(stats.get("v_prune_rate", 0.0), 4)
                row["c_prune_rate"] = round(stats.get("c_prune_rate", 0.0), 4)

            for name, row in summaries.items():
                rows.append(
                    {
                        "figure": "1-2",
                        "dataset": dataset,
                        "delta": delta,
                        **row,
                    }
                )
    return rows


def figure1_rows(rows: Sequence[dict]) -> list[dict]:
    """Project the sweep rows onto Figure 1 (approximation ratio and memory)."""
    return [
        {
            "dataset": r["dataset"],
            "delta": r["delta"],
            "algorithm": r["algorithm"],
            "approx_ratio": r["approx_ratio"],
            "memory_points": r["memory_points"],
        }
        for r in rows
    ]


def figure2_rows(rows: Sequence[dict]) -> list[dict]:
    """Project the sweep rows onto Figure 2 (update and query times, ms)."""
    return [
        {
            "dataset": r["dataset"],
            "delta": r["delta"],
            "algorithm": r["algorithm"],
            "update_ms": r["update_ms"],
            "query_ms": r["query_ms"],
            # Diagnostics carried by the streaming algorithms only; the
            # sequential baselines report an empty path and zero skip rates.
            "update_path": r.get("update_path", ""),
            "v_prune_rate": r.get("v_prune_rate", 0.0),
            "c_prune_rate": r.get("c_prune_rate", 0.0),
        }
        for r in rows
    ]
