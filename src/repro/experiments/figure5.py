"""Figure 5 — query time and memory vs. *ambient* dimensionality (rotated).

The rotated datasets embed the 3-dimensional PHONES-like stream into up to 15
ambient dimensions (zero padding followed by a random rigid rotation), so the
intrinsic/doubling dimension stays 3 regardless of the number of coordinates.
Expected shape: unlike Figure 4, the query time and memory of the streaming
algorithm stay flat as the ambient dimension grows, confirming that the cost
depends on the doubling dimension of the data rather than on the raw number
of coordinates.

:func:`run_cell` regenerates the series at a *single* ambient dimension —
the unit the :mod:`repro.bench` sweep runner schedules across its
figure × dimension × backend × dtype grid; :func:`run` is the plain
all-dimensions driver used by the ``figure5`` CLI sub-command.
"""

from __future__ import annotations

from typing import Sequence

from ..core.config import SlidingWindowConfig
from ..core.fair_sliding_window import FairSlidingWindow
from ..datasets.registry import load_dataset
from ..evaluation.reporting import format_table
from ..evaluation.runner import Contender, run_experiment
from ..sequential.jones import JonesFairCenter
from ..streaming.baseline_window import SlidingWindowBaseline
from .common import (
    ExperimentScale,
    build_constraint,
    estimate_distance_bounds,
    get_scale,
)


def run_cell(
    ambient_dimension: int,
    *,
    scale: ExperimentScale | None = None,
    deltas: Sequence[float] = (0.5, 2.0),
    seed: int = 0,
) -> list[dict]:
    """The Figure 5 series at one ambient dimension; one row per (algorithm, δ).

    One call is one *sweep cell*: the rotated stream is generated, converted
    once into the run's shared coordinate arena, and every contender (the
    Jones baseline plus ``Ours`` at each δ) is driven over it.
    """
    scale = scale if scale is not None else get_scale()
    dataset = f"rotated-{ambient_dimension}d"
    points = load_dataset(dataset, scale.stream_length, seed=seed)
    constraint = build_constraint(points)
    dmin, dmax = estimate_distance_bounds(points)
    contenders: list[Contender] = [
        Contender(
            "Jones",
            SlidingWindowBaseline(
                scale.window_size, constraint, JonesFairCenter(), name="Jones"
            ),
            is_reference=True,
        )
    ]
    for delta in deltas:
        config = SlidingWindowConfig(
            window_size=scale.window_size,
            constraint=constraint,
            delta=delta,
            beta=2.0,
            dmin=dmin,
            dmax=dmax,
        )
        contenders.append(Contender(f"Ours(delta={delta})", FairSlidingWindow(config)))
    result = run_experiment(
        points,
        contenders,
        window_size=scale.window_size,
        constraint=constraint,
        num_queries=scale.num_queries,
    )
    return [
        {
            "figure": "5",
            "dataset": dataset,
            "ambient_dimension": ambient_dimension,
            **row,
        }
        for row in result.summaries().values()
    ]


def run(
    *,
    scale: ExperimentScale | None = None,
    ambient_dimensions: Sequence[int] | None = None,
    deltas: Sequence[float] = (0.5, 2.0),
    seed: int = 0,
) -> list[dict]:
    """Regenerate the Figure 5 series; one row per (ambient dim, algorithm, δ)."""
    scale = scale if scale is not None else get_scale()
    ambient_dimensions = (
        tuple(ambient_dimensions)
        if ambient_dimensions is not None
        else scale.rotated_dimensions
    )
    rows: list[dict] = []
    for ambient in ambient_dimensions:
        rows.extend(run_cell(ambient, scale=scale, deltas=deltas, seed=seed))
    return rows


def main() -> None:  # pragma: no cover - CLI entry point
    rows = run()
    print(
        format_table(
            rows,
            [
                "ambient_dimension",
                "algorithm",
                "query_ms",
                "memory_points",
                "approx_ratio",
            ],
            title="Figure 5: query time and memory vs ambient dimensionality (rotated)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()
